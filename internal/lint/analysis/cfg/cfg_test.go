package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"hpbd/internal/lint/analysis/cfg"
)

// build parses a function body and returns its CFG.
func build(t *testing.T, body string) *cfg.CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return cfg.New(fd.Body)
}

// exits returns the reachable blocks with no successors.
func exits(g *cfg.CFG) []*cfg.Block {
	reachable := map[*cfg.Block]bool{}
	var walk func(b *cfg.Block)
	walk = func(b *cfg.Block) {
		if reachable[b] {
			return
		}
		reachable[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Blocks[0])
	var out []*cfg.Block
	for _, b := range g.Blocks {
		if reachable[b] && len(b.Succs) == 0 {
			out = append(out, b)
		}
	}
	return out
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\n_ = x\nreturn")
	if len(g.Blocks) == 0 {
		t.Fatal("no blocks")
	}
	ex := exits(g)
	if len(ex) != 1 {
		t.Fatalf("want 1 exit, got %d", len(ex))
	}
	if ex[0].Return() == nil {
		t.Error("exit block should end in a return statement")
	}
}

// If: successor 0 is the then branch, successor 1 the else/done branch,
// and the condition is the head block's trailing node.
func TestIfEdges(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x")
	head := g.Blocks[0]
	if len(head.Succs) != 2 {
		t.Fatalf("if head: want 2 successors, got %d", len(head.Succs))
	}
	cond, ok := head.Nodes[len(head.Nodes)-1].(ast.Expr)
	if !ok {
		t.Fatalf("if head should end with the condition expression, got %T", head.Nodes[len(head.Nodes)-1])
	}
	if _, isBin := cond.(*ast.BinaryExpr); !isBin {
		t.Errorf("condition should be the x > 0 expression, got %T", cond)
	}
	// Both branches converge: exactly one exit.
	if ex := exits(g); len(ex) != 1 {
		t.Errorf("want 1 exit after join, got %d", len(ex))
	}
}

// A return inside a branch leaves two reachable exits.
func TestEarlyReturn(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\nreturn\n}\n_ = x")
	ex := exits(g)
	if len(ex) != 2 {
		t.Fatalf("want 2 exits (early return + fall off end), got %d", len(ex))
	}
	withReturn := 0
	for _, b := range ex {
		if b.Return() != nil {
			withReturn++
		}
	}
	if withReturn != 1 {
		t.Errorf("want exactly 1 exit ending in return, got %d", withReturn)
	}
}

// A for loop has a back edge; break reaches the done block.
func TestForLoop(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ {\nif i == 1 {\nbreak\n}\n}\n_ = 0")
	ex := exits(g)
	if len(ex) != 1 {
		t.Fatalf("want 1 exit, got %d", len(ex))
	}
	// The loop head must be its own successor transitively (a cycle).
	var head *cfg.Block
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index <= b.Index && len(s.Succs) == 2 {
				head = s
			}
		}
	}
	if head == nil {
		t.Error("no back edge to a two-successor loop head found")
	}
}

// An infinite loop with no break has no reachable exit.
func TestInfiniteLoop(t *testing.T) {
	g := build(t, "for {\n_ = 0\n}")
	if ex := exits(g); len(ex) != 0 {
		t.Fatalf("infinite loop: want 0 reachable exits, got %d", len(ex))
	}
}

// panic() marks its block so analyzers skip obligation checks there.
func TestPanicBlock(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\npanic(\"no\")\n}\n_ = x")
	found := false
	for _, b := range g.Blocks {
		if b.Panics {
			found = true
		}
	}
	if !found {
		t.Error("no block marked Panics")
	}
	// The panic exit is excluded, the normal fall-off exit remains.
	normal := 0
	for _, b := range exits(g) {
		if !b.Panics {
			normal++
		}
	}
	if normal != 1 {
		t.Errorf("want 1 non-panicking exit, got %d", normal)
	}
}

// Switch: every case body is reachable from the head; a missing
// default adds a fall-through edge to done.
func TestSwitch(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\nx = 2\ncase 2:\nx = 3\n}\n_ = x")
	if ex := exits(g); len(ex) != 1 {
		t.Fatalf("want 1 exit, got %d", len(ex))
	}
}

// The range header holds only the ranged expression, not the whole
// statement, so analyzers see the operand once.
func TestRangeHeader(t *testing.T) {
	g := build(t, "s := []int{1}\nfor _, v := range s {\n_ = v\n}")
	var rangeHead *cfg.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, isRange := n.(*ast.RangeStmt); isRange {
				t.Fatalf("block %d holds a whole *ast.RangeStmt", b.Index)
			}
			if id, isIdent := n.(*ast.Ident); isIdent && id.Name == "s" && len(b.Succs) == 2 {
				rangeHead = b
			}
		}
	}
	if rangeHead == nil {
		t.Error("no two-successor block holding the ranged operand found")
	}
}

// Labeled break exits the outer loop.
func TestLabeledBreak(t *testing.T) {
	g := build(t, "outer:\nfor {\nfor {\nbreak outer\n}\n}\n_ = 0")
	if ex := exits(g); len(ex) != 1 {
		t.Fatalf("labeled break: want 1 reachable exit, got %d", len(ex))
	}
}
