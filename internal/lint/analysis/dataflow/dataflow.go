// Package dataflow is a generic forward worklist solver over
// internal/lint/analysis/cfg graphs.
//
// A client supplies a Flow: the entry state, a per-block transfer
// function, a join, an equality test, and (optionally) an edge refiner
// that specializes the state flowing along a particular successor edge —
// the hook that makes a trailing condition like `if sem.TryAcquire(1)`
// mean different things on the true and false edges.
//
// States must be treated as immutable values: Transfer, Edge and Join
// must return fresh states rather than mutating their arguments, because
// the solver retains and compares states across iterations. Termination
// is the client's responsibility in the usual way — Join must be
// monotone over a finite-height lattice.
//
// The worklist is deterministic: among queued blocks the lowest block
// index runs first, so analyzer output order never depends on map
// iteration.
package dataflow

import "hpbd/internal/lint/analysis/cfg"

// Flow defines one forward dataflow problem over states of type S.
type Flow[S any] struct {
	// Entry is the state on entry to Blocks[0].
	Entry S

	// Transfer applies the block's effects to the incoming state.
	Transfer func(b *cfg.Block, in S) S

	// Edge, if non-nil, refines the block's output state for the edge to
	// its succIdx'th successor (cfg convention: for a block ending in a
	// condition, succ 0 is the true edge and succ 1 the false edge).
	Edge func(b *cfg.Block, succIdx int, out S) S

	// Join merges the states of two incoming edges.
	Join func(a, b S) S

	// Equal reports whether two states are equal (fixpoint test).
	Equal func(a, b S) bool
}

// Result holds the solved per-block states. Blocks unreachable from the
// entry are absent from both maps.
type Result[S any] struct {
	In  map[*cfg.Block]S
	Out map[*cfg.Block]S
}

// Forward solves the dataflow problem to fixpoint.
func Forward[S any](g *cfg.CFG, f Flow[S]) *Result[S] {
	res := &Result[S]{In: map[*cfg.Block]S{}, Out: map[*cfg.Block]S{}}
	if len(g.Blocks) == 0 {
		return res
	}
	entry := g.Blocks[0]
	res.In[entry] = f.Entry
	queued := make([]bool, len(g.Blocks))
	queued[entry.Index] = true
	pending := 1
	for pending > 0 {
		idx := -1
		for i, q := range queued {
			if q {
				idx = i
				break
			}
		}
		queued[idx] = false
		pending--
		b := g.Blocks[idx]
		out := f.Transfer(b, res.In[b])
		res.Out[b] = out
		for si, succ := range b.Succs {
			e := out
			if f.Edge != nil {
				e = f.Edge(b, si, out)
			}
			old, seen := res.In[succ]
			next := e
			if seen {
				next = f.Join(old, e)
			}
			if !seen || !f.Equal(old, next) {
				res.In[succ] = next
				if !queued[succ.Index] {
					queued[succ.Index] = true
					pending++
				}
			}
		}
	}
	return res
}
