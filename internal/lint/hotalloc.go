package lint

// The hotalloc analyzer: functions marked //hpbd:hotpath in their doc
// comment must not allocate. The flight recorder and the lifecycle
// tracer promise zero allocations per recorded request (PR 4's overhead
// benchmark measures it; this makes it a build failure), and the
// per-request marshalling path inherits the same budget.
//
// This is an escape-style approximation, not the compiler's escape
// analysis. Flagged in a marked function:
//
//   - make / new / append and map or slice composite literals
//   - &CompositeLit, UNLESS it is directly a call argument (the callee
//     gets a pointer to a stack temporary; the paired benchmark is the
//     backstop for callees that retain it)
//   - function literals (closure capture) and go statements
//   - string concatenation (+ / +=) and the allocating conversions
//     []byte(s), []rune(s), string(b)
//   - an implicit interface conversion at a call site when the argument
//     is a concrete non-pointer value (fmt-style APIs, map[string]any
//     arguments); pointers box without allocating
//   - a call to a same-package function that allocates by these rules
//     (transitive, memoized), reported at the call site — unless the
//     callee is itself marked //hpbd:hotpath, in which case it is
//     checked on its own
//
// Deliberately allowed: value struct composites, &localVar (taking the
// address of a variable does not by itself allocate a new object; if it
// escapes, the benchmark catches it), map index assignment (amortized),
// defer (open-coded), and calls into other packages (invisible here;
// the zero-alloc contract of a cross-package callee is enforced where
// that callee is marked).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hpbd/internal/lint/analysis"
)

// hotpathMarker tags a function whose body must not allocate.
const hotpathMarker = "//hpbd:hotpath"

// Hotalloc reports heap allocations in //hpbd:hotpath functions.
var Hotalloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //hpbd:hotpath must not allocate",
	Run:  runHotalloc,
}

func runHotalloc(pass *analysis.Pass) (interface{}, error) {
	ha := &hotalloc{
		fi:         newFuncIndex(pass),
		pass:       pass,
		summaries:  map[*ast.FuncDecl]token.Pos{},
		inProgress: map[*ast.FuncDecl]bool{},
		marked:     map[*ast.FuncDecl]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && funcDocHas(fd, hotpathMarker) {
				ha.marked[fd] = true
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && ha.marked[fd] {
				ha.checkBody(fd)
			}
		}
	}
	return nil, nil
}

type hotalloc struct {
	fi         *funcIndex
	pass       *analysis.Pass
	marked     map[*ast.FuncDecl]bool
	summaries  map[*ast.FuncDecl]token.Pos // first allocation site, or NoPos
	inProgress map[*ast.FuncDecl]bool
}

func (ha *hotalloc) checkBody(fd *ast.FuncDecl) {
	ast.Walk(&hotWalker{ha: ha, report: true}, fd.Body)
}

// hotWalker flags allocation sites. allowAddr marks the immediate
// children that are direct call arguments, where &composite / &var are
// allowed.
type hotWalker struct {
	ha        *hotalloc
	report    bool
	allowAddr bool

	// firstAlloc records the first allocation found when report is
	// false (summary mode).
	firstAlloc token.Pos
}

func (w *hotWalker) found(pos token.Pos, format string, args ...interface{}) {
	if w.report {
		w.ha.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
		return
	}
	if !w.firstAlloc.IsValid() {
		w.firstAlloc = pos
	}
}

// Visit implements ast.Visitor.
func (w *hotWalker) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		return nil
	}
	allowAddr := w.allowAddr
	w.allowAddr = false // the permission applies to one level only
	info := w.ha.fi.info

	switch n := n.(type) {
	case *ast.FuncLit:
		w.found(n.Pos(), "function literal allocates a closure on the hot path")
		return nil

	case *ast.GoStmt:
		w.found(n.Pos(), "starting a goroutine allocates on the hot path")
		return nil

	case *ast.UnaryExpr:
		if n.Op == token.AND {
			switch x := ast.Unparen(n.X).(type) {
			case *ast.CompositeLit:
				if !allowAddr {
					w.found(n.Pos(), "&composite literal escapes to the heap on the hot path (allowed only as a direct call argument)")
				}
				// Walk the literal's elements either way.
				for _, e := range x.Elts {
					ast.Walk(w, e)
				}
				return nil
			case *ast.Ident:
				return nil // &localVar: no allocation by itself
			}
		}

	case *ast.CompositeLit:
		if t := info.TypeOf(n); t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				w.found(n.Pos(), "map literal allocates on the hot path")
				return nil
			case *types.Slice:
				w.found(n.Pos(), "slice literal allocates on the hot path")
				return nil
			}
		}
		// Value struct/array composites stay on the stack: keep walking.

	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := info.TypeOf(n); t != nil && isString(t) {
				w.found(n.Pos(), "string concatenation allocates on the hot path")
			}
		}

	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
			if t := info.TypeOf(n.Lhs[0]); t != nil && isString(t) {
				w.found(n.Pos(), "string concatenation allocates on the hot path")
			}
		}

	case *ast.CallExpr:
		return w.call(n)
	}
	return w
}

func (w *hotWalker) call(n *ast.CallExpr) ast.Visitor {
	info := w.ha.fi.info

	// Type conversion?
	if tv, ok := info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
		target := tv.Type
		argT := info.TypeOf(n.Args[0])
		switch target.Underlying().(type) {
		case *types.Slice:
			// []byte(s), []rune(s): allocates unless converting a slice.
			if argT != nil && isString(argT) {
				w.found(n.Pos(), "string-to-slice conversion allocates on the hot path")
			}
		default:
			if isString(target) && argT != nil {
				if _, isSlice := argT.Underlying().(*types.Slice); isSlice {
					w.found(n.Pos(), "slice-to-string conversion allocates on the hot path")
				}
			}
		}
		ast.Walk(w, n.Args[0])
		return nil
	}

	// Builtins.
	if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				w.found(n.Pos(), "%s allocates on the hot path", id.Name)
			case "append":
				w.found(n.Pos(), "append may grow its backing array on the hot path")
			}
			for _, a := range n.Args {
				ast.Walk(w, a)
			}
			return nil
		}
	}

	// Implicit interface conversions at the call boundary.
	if sigT := info.TypeOf(n.Fun); sigT != nil {
		if sig, ok := sigT.Underlying().(*types.Signature); ok {
			for i, a := range n.Args {
				pt := paramType(sig, i)
				if pt == nil || !types.IsInterface(pt) {
					continue
				}
				at := info.TypeOf(a)
				if at == nil || types.IsInterface(at) || isUntypedNil(at) {
					continue
				}
				if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
					continue // pointers box without allocating
				}
				w.found(a.Pos(), "implicit conversion to interface allocates on the hot path")
			}
		}
	}

	// A same-package callee that allocates taints the call site; marked
	// callees are verified on their own.
	if _, callee := w.ha.fi.staticCallee(n); callee != nil && !w.ha.marked[callee] {
		if pos := w.ha.allocSite(callee); pos.IsValid() {
			w.found(n.Pos(), "calls %s, which allocates at %s (mark it //hpbd:hotpath or lift the allocation)",
				callee.Name.Name, w.ha.fi.fset.Position(pos))
		}
	}

	// Walk callee expression and arguments; direct arguments may take
	// addresses without allocating.
	ast.Walk(w, n.Fun)
	for _, a := range n.Args {
		ast.Walk(&allowAddrWalker{w: w}, a)
	}
	return nil
}

// allowAddrWalker grants the one-level &composite/&var allowance to a
// direct call argument, then delegates to the normal walker.
type allowAddrWalker struct{ w *hotWalker }

func (aw *allowAddrWalker) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		return nil
	}
	aw.w.allowAddr = true
	return aw.w.Visit(n)
}

// allocSite reports the first allocation site in a (non-marked)
// same-package function, memoized and recursion-guarded.
func (ha *hotalloc) allocSite(fd *ast.FuncDecl) token.Pos {
	if pos, done := ha.summaries[fd]; done {
		return pos
	}
	if ha.inProgress[fd] {
		return token.NoPos
	}
	ha.inProgress[fd] = true
	defer func() { ha.inProgress[fd] = false }()
	w := &hotWalker{ha: ha, report: false}
	ast.Walk(w, fd.Body)
	ha.summaries[fd] = w.firstAlloc
	return w.firstAlloc
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// paramType returns the type of the i'th argument's parameter,
// unwrapping the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	np := sig.Params().Len()
	if np == 0 {
		return nil
	}
	if sig.Variadic() && i >= np-1 {
		if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < np {
		return sig.Params().At(i).Type()
	}
	return nil
}
