package lint

import (
	"go/ast"
	"go/types"

	"hpbd/internal/lint/analysis"
)

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. Constructors (New, NewSource, NewZipf) are the
// approved escape hatch and stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions, should anyone import it.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

// Globalrand forbids the process-global math/rand source in deterministic
// packages. Every run of a paper figure must be a pure function of its
// seed, so randomness flows from sim.Env.Rand or an explicitly seeded
// rand.New(rand.NewSource(seed)).
var Globalrand = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid package-level math/rand functions (global source) in " +
		"deterministic packages; use sim.Env.Rand or a seeded rand.New",
	Run: runGlobalrand,
}

func runGlobalrand(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !globalRandFuncs[sel.Sel.Name] {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // *rand.Rand method on a seeded source: fine
			}
			pass.ReportRangef(sel, "global math/rand source via rand.%s; thread a seeded *rand.Rand (sim.Env.Rand or rand.New(rand.NewSource(seed)))", sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}
