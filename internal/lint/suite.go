// Package lint is hpbd-vet: a suite of static analyzers that mechanically
// enforce the simulator's determinism contract (DESIGN.md, "Determinism
// contract"). Every paper figure depends on internal/sim being a pure
// function of its seed; these checks make the properties that guarantee
// that — no wall clock, no global randomness, no map-ordered scheduling,
// no real blocking inside simulated processes, nil-safe telemetry handles
// — into build failures instead of silent noise in calibrated results.
//
// The analyzers are written against internal/lint/analysis, an
// API-compatible subset of golang.org/x/tools/go/analysis, and run over
// packages loaded by internal/lint/load. cmd/hpbd-vet is the multichecker
// front end.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"hpbd/internal/lint/analysis"
	"hpbd/internal/lint/load"
)

// Analyzers is the full hpbd-vet suite in reporting order. The first
// five enforce the determinism contract (DESIGN.md §8); the last four
// are the flow-sensitive protocol analyzers built on
// internal/lint/analysis/cfg + dataflow.
var Analyzers = []*analysis.Analyzer{
	Walltime,
	Globalrand,
	Mapiter,
	Simblock,
	Telemetrynil,
	Creditbalance,
	Handleonce,
	Lockorder,
	Hotalloc,
}

var knownAnalyzers = map[string]bool{}

func init() {
	for _, a := range Analyzers {
		knownAnalyzers[a.Name] = true
	}
}

// skipPackages maps analyzer name -> import paths the check does not apply
// to. This is driver policy, not analyzer logic, mirroring how x/tools
// drivers own file filtering:
//
//   - walltime/globalrand: the real TCP stack (netblock, hpbd-server)
//     legitimately lives on the wall clock and OS entropy.
//   - mapiter: scoped to the deterministic core — packages whose map
//     iteration can reach a scheduling decision.
//   - simblock: the sim kernel itself implements parking with real
//     channels; everyone above it must not.
//   - telemetrynil: the telemetry package is the constructor.
var skipPackages = map[string]map[string]bool{
	Walltime.Name: {
		"hpbd/internal/netblock": true,
		"hpbd/cmd/hpbd-server":   true,
	},
	Globalrand.Name: {
		"hpbd/internal/netblock": true,
		"hpbd/cmd/hpbd-server":   true,
	},
	Simblock.Name: {
		"hpbd/internal/sim": true,
	},
	Telemetrynil.Name: {
		"hpbd/internal/telemetry": true,
	},
}

// mapiterPackages is the inverse: mapiter applies only inside the
// deterministic core — every package whose map iteration can reach a
// scheduling decision, including the PR 5-6 directory/mirror/injector
// layers.
var mapiterPackages = map[string]bool{
	"hpbd/internal/sim":         true,
	"hpbd/internal/hpbd":        true,
	"hpbd/internal/ib":          true,
	"hpbd/internal/vm":          true,
	"hpbd/internal/blockdev":    true,
	"hpbd/internal/cluster":     true,
	"hpbd/internal/experiments": true,
	"hpbd/internal/placement":   true,
	"hpbd/internal/mirror":      true,
	"hpbd/internal/faultsim":    true,
	"hpbd/internal/tenant":      true,
}

// onlyPackages restricts an analyzer to an inclusion list, like
// mapiterPackages: the protocol analyzers audit the layers that speak
// the credit/handle protocols. lockorder additionally covers the real
// TCP device and the NBD baseline (ordinary sync.Mutex users); hotalloc
// is absent — it runs everywhere, gated by the //hpbd:hotpath marker.
var onlyPackages = map[string]map[string]bool{
	Creditbalance.Name: {
		"hpbd/internal/hpbd":    true,
		"hpbd/internal/mirror":  true,
		"hpbd/internal/cluster": true,
		"hpbd/internal/tenant":  true,
	},
	Handleonce.Name: {
		"hpbd/internal/hpbd":      true,
		"hpbd/internal/mirror":    true,
		"hpbd/internal/cluster":   true,
		"hpbd/internal/placement": true,
	},
	Lockorder.Name: {
		"hpbd/internal/hpbd":      true,
		"hpbd/internal/mirror":    true,
		"hpbd/internal/cluster":   true,
		"hpbd/internal/placement": true,
		"hpbd/internal/netblock":  true,
		"hpbd/internal/nbd":       true,
	},
}

// applies reports whether analyzer a runs on package path under the
// default suite policy.
func applies(a *analysis.Analyzer, pkgPath string) bool {
	if a.Name == Mapiter.Name {
		return mapiterPackages[pkgPath]
	}
	if only, ok := onlyPackages[a.Name]; ok {
		return only[pkgPath]
	}
	return !skipPackages[a.Name][pkgPath]
}

// Finding is one suite diagnostic with a resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzer applies a single analyzer to one package, honouring
// //hpbd:allow directives but not the package applicability policy (the
// analysistest fixtures rely on that). Malformed directives are reported
// as findings of the analyzer being run.
func RunAnalyzer(a *analysis.Analyzer, pkg *load.Package) ([]Finding, error) {
	var dirs []directive
	for _, f := range pkg.Syntax {
		dirs = append(dirs, parseDirectives(pkg.Fset, f)...)
	}
	var findings []Finding
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report: func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if suppressed(dirs, a.Name, pos.Line) {
				return
			}
			// A directive covering any related position (e.g. the acquire
			// site of a leak reported at a return) also suppresses.
			for _, rp := range d.Related {
				if rp.IsValid() && suppressed(dirs, a.Name, pkg.Fset.Position(rp).Line) {
					return
				}
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
	}
	return findings, nil
}

// Run applies the whole suite to the packages under the default policy and
// returns findings sorted by position. Malformed //hpbd:allow directives
// are reported once per package under the pseudo-analyzer "directive".
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, d := range directiveDiagnostics(parseDirectives(pkg.Fset, f)) {
				findings = append(findings, Finding{
					Analyzer: "directive",
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
		}
		for _, a := range analyzers {
			if !applies(a, pkg.PkgPath) {
				continue
			}
			fs, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			findings = append(findings, fs...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Doc renders the analyzer list for -help output.
func Doc() string {
	var b strings.Builder
	for _, a := range Analyzers {
		fmt.Fprintf(&b, "  %-13s %s\n", a.Name, a.Doc)
	}
	return b.String()
}
