package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"hpbd/internal/lint/analysis"
)

// directivePrefix introduces an opt-out comment. Syntax:
//
//	//hpbd:allow analyzer[,analyzer...] -- reason
//
// A directive suppresses matching diagnostics on its own line and on the
// line immediately below (so it can sit inline or on the preceding line).
// The reason after " -- " is mandatory: an unexplained exemption is a
// determinism bug waiting for its moment.
const directivePrefix = "//hpbd:allow"

// directive is one parsed //hpbd:allow comment.
type directive struct {
	pos       token.Pos
	line      int
	analyzers map[string]bool
	reason    string
	malformed string // non-empty: why the directive is invalid
}

// parseDirectives extracts every //hpbd:allow directive from a file.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			d := directive{pos: c.Pos(), line: fset.Position(c.Pos()).Line, analyzers: map[string]bool{}}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			names, reason, found := strings.Cut(rest, "--")
			if !found || strings.TrimSpace(reason) == "" {
				d.malformed = "missing reason: use //hpbd:allow <analyzer> -- <reason>"
			}
			d.reason = strings.TrimSpace(reason)
			for _, name := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
				if !knownAnalyzers[name] {
					d.malformed = "unknown analyzer \"" + name + "\" in //hpbd:allow directive"
					continue
				}
				d.analyzers[name] = true
			}
			if len(d.analyzers) == 0 && d.malformed == "" {
				d.malformed = "directive names no analyzer"
			}
			out = append(out, d)
		}
	}
	return out
}

// suppressed reports whether diag (from the named analyzer, at the given
// line) is covered by one of the file's directives.
func suppressed(dirs []directive, analyzer string, line int) bool {
	for _, d := range dirs {
		if d.malformed != "" || !d.analyzers[analyzer] {
			continue
		}
		if line == d.line || line == d.line+1 {
			return true
		}
	}
	return false
}

// directiveDiagnostics turns malformed directives into diagnostics so a
// typo'd opt-out fails the build instead of silently not applying.
func directiveDiagnostics(dirs []directive) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range dirs {
		if d.malformed != "" {
			out = append(out, analysis.Diagnostic{Pos: d.pos, Message: d.malformed})
		}
	}
	return out
}
