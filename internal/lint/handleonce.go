package lint

// The handleonce analyzer: a request handle removed from an in-flight
// tracking map must be settled on exactly one path — completed, requeued
// or handed off — never dropped, never settled twice. This is the
// invariant behind the client's pending map: every delete(d.pending, h)
// is followed by exactly one of finishPhys / retryOrRoute /
// routeDegraded / re-insertion under a fresh handle (the failover and
// migration requeue discipline), and a path that forgets loses the
// request while a path that settles twice completes it twice.
//
// Tracked maps are discovered per package: any map identity (field or
// local) with a pointer-to-named-struct element that sees BOTH an index
// assignment and a delete somewhere in the package. For each function a
// forward dataflow tracks local variables over the lattice
//
//	bound     looked up from a tracked map (the map still owns it)
//	detached  the entry was deleted; this variable owes a settlement
//	settled   exactly one settlement happened
//
// joined pointwise with detached > bound > settled. delete(m, k) moves
// every variable bound to m to detached, and — because the idiom
// `delete(d.pending, ph.handle)` detaches a handle reached through a
// struct, not a prior lookup — also detaches a variable x when the key
// is x.field and x has the map's element type. Settlements are:
//
//   - a call to a method named Complete or Trigger whose receiver chain
//     is rooted at the variable (ph.parent.req.Complete(err) settles
//     ph, ev.Trigger() settles a parked waiter's event; an unrelated
//     tracer.Complete does not);
//   - re-insertion into a tracked map (the map owns it again; tracking
//     stops so the follow-up sendQ.TrySend is not a second settlement);
//   - sending the variable into a channel or a Send/TrySend method;
//   - a call to a same-package function whose (transitive, memoized)
//     summary may settle that parameter.
//
// Returning the variable, storing it into a field/slice, or capturing
// it in a non-settling function literal transfers ownership out of the
// function and ends tracking without a report. Passing it to a callee
// the package cannot see (function-typed values, other packages) is a
// deliberate no-op. A variable still detached at a reachable return is
// reported at the return with the delete site as a related position, so
// //hpbd:allow works on either line; a second settlement is reported at
// the settling call.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hpbd/internal/lint/analysis"
	"hpbd/internal/lint/analysis/cfg"
	"hpbd/internal/lint/analysis/dataflow"
)

// Handleonce reports in-flight handles dropped or settled twice.
var Handleonce = &analysis.Analyzer{
	Name: "handleonce",
	Doc:  "a handle removed from an in-flight map is settled exactly once",
	Run:  runHandleonce,
}

const (
	hSettled uint8 = iota + 1
	hBound
	hDetached
)

// handleVar is one tracked variable's state: the lattice point, the map
// it came from, the identity of the lookup key (so a delete under a
// different key does not detach it), and the position that put it in
// this state (the lookup, the delete, or the first settlement).
type handleVar struct {
	st  uint8
	m   types.Object
	key types.Object // lookup key identity; nil when not a simple path
	pos token.Pos
}

type handleState map[types.Object]handleVar

func (s handleState) clone() handleState {
	n := make(handleState, len(s))
	for k, v := range s {
		n[k] = v
	}
	return n
}

func handleJoin(a, b handleState) handleState {
	n := a.clone()
	for k, v := range b {
		if old, ok := n[k]; !ok || v.st > old.st {
			n[k] = v
		}
	}
	return n
}

func handleEqual(a, b handleState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func runHandleonce(pass *analysis.Pass) (interface{}, error) {
	fi := newFuncIndex(pass)
	h := &handleonce{fi: fi, pass: pass, summaries: map[*ast.FuncDecl]int{}, inProgress: map[*ast.FuncDecl]bool{}}
	h.findTrackedMaps(pass.Files)
	if len(h.tracked) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				h.checkFunc(fd)
			}
		}
	}
	h.emit()
	return nil, nil
}

type handleonce struct {
	fi      *funcIndex
	pass    *analysis.Pass
	tracked map[types.Object]bool // map identities with insert+delete

	summaries  map[*ast.FuncDecl]int // param-index bitmask that may settle
	inProgress map[*ast.FuncDecl]bool

	diags []analysis.Diagnostic
	seen  map[string]bool
}

func (h *handleonce) report(d analysis.Diagnostic) {
	if h.seen == nil {
		h.seen = map[string]bool{}
	}
	key := fmt.Sprintf("%d:%s", d.Pos, d.Message)
	if h.seen[key] {
		return
	}
	h.seen[key] = true
	h.diags = append(h.diags, d)
}

func (h *handleonce) emit() {
	sort.Slice(h.diags, func(i, j int) bool {
		if h.diags[i].Pos != h.diags[j].Pos {
			return h.diags[i].Pos < h.diags[j].Pos
		}
		return h.diags[i].Message < h.diags[j].Message
	})
	for _, d := range h.diags {
		h.pass.Report(d)
	}
}

// elemStruct returns the named struct behind a map's
// pointer-to-named-struct element type, or nil.
func elemStruct(mapType types.Type) *types.Named {
	m, ok := mapType.Underlying().(*types.Map)
	if !ok {
		return nil
	}
	p, ok := m.Elem().Underlying().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return nil
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return named
}

// findTrackedMaps marks every map identity the package both inserts
// into and deletes from, with a pointer-to-named-struct element.
func (h *handleonce) findTrackedMaps(files []*ast.File) {
	inserted := map[types.Object]bool{}
	deleted := map[types.Object]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if obj := resourceID(h.fi.info, idx.X); obj != nil && elemStruct(obj.Type()) != nil {
							inserted[obj] = true
						}
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
					if _, isBuiltin := h.fi.info.Uses[id].(*types.Builtin); isBuiltin {
						if obj := resourceID(h.fi.info, n.Args[0]); obj != nil && elemStruct(obj.Type()) != nil {
							deleted[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	h.tracked = map[types.Object]bool{}
	for obj := range inserted {
		if deleted[obj] {
			h.tracked[obj] = true
		}
	}
}

func (h *handleonce) checkFunc(fd *ast.FuncDecl) {
	g := h.fi.cfgOf(fd)
	flow := dataflow.Flow[handleState]{
		Entry: handleState{},
		Transfer: func(b *cfg.Block, in handleState) handleState {
			out := in.clone()
			for _, n := range b.Nodes {
				h.transferNode(n, out)
			}
			return out
		},
		Join:  handleJoin,
		Equal: handleEqual,
	}
	res := dataflow.Forward(g, flow)
	for _, b := range g.Blocks {
		if len(b.Succs) != 0 || b.Panics {
			continue
		}
		out, reached := res.Out[b]
		if !reached {
			continue
		}
		pos := exitPos(b, fd.Body)
		for v, hv := range out {
			if hv.st != hDetached {
				continue
			}
			h.report(analysis.Diagnostic{
				Pos: pos,
				Message: fmt.Sprintf("handle %q removed from %q at line %d may reach this return without being completed, requeued or handed off",
					v.Name(), hv.m.Name(), h.fi.fset.Position(hv.pos).Line),
				Related: []token.Pos{hv.pos},
			})
		}
	}
}

// settle applies one settlement of v at pos, reporting a double settle.
func (h *handleonce) settle(out handleState, v types.Object, pos token.Pos) {
	hv, ok := out[v]
	if !ok {
		return
	}
	switch hv.st {
	case hDetached:
		out[v] = handleVar{st: hSettled, m: hv.m, key: hv.key, pos: pos}
	case hSettled:
		h.report(analysis.Diagnostic{
			Pos: pos,
			Message: fmt.Sprintf("handle %q already settled at line %d is settled again here",
				v.Name(), h.fi.fset.Position(hv.pos).Line),
			Related: []token.Pos{hv.pos},
		})
	case hBound:
		// Settling while the map still owns it is outside this protocol;
		// stop tracking rather than guess.
		delete(out, v)
	}
}

// localObj resolves an identifier to its (non-field) object. Blank
// identifiers carry no ownership and resolve to nil.
func (h *handleonce) localObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return h.fi.info.ObjectOf(id)
}

func (h *handleonce) transferNode(node ast.Node, out handleState) {
	inspectLeaf(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false // deferred settlements are out of scope

		case *ast.FuncLit:
			h.literalEffects(n, out)
			return true // body pruned by inspectLeaf

		case *ast.AssignStmt:
			h.assign(n, out)
			return true // children re-visited below is fine (idempotent binds)

		case *ast.SendStmt:
			if v := h.localObj(n.Value); v != nil {
				h.settle(out, v, n.Pos())
			}

		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if v := h.localObj(r); v != nil {
					delete(out, v) // ownership moves to the caller
				}
			}

		case *ast.CallExpr:
			h.call(n, out)
		}
		return true
	})
}

func (h *handleonce) assign(n *ast.AssignStmt, out handleState) {
	rhsFor := func(i int) ast.Expr {
		if len(n.Rhs) == len(n.Lhs) {
			return n.Rhs[i]
		}
		if i == 0 && len(n.Rhs) == 1 {
			return n.Rhs[0] // v, ok := m[k]
		}
		return nil
	}
	for i, lhs := range n.Lhs {
		lhs = ast.Unparen(lhs)
		rhs := rhsFor(i)

		// m[k] = v with m tracked: the map owns the handle again.
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if mobj := resourceID(h.fi.info, idx.X); mobj != nil && h.tracked[mobj] {
				if rhs != nil {
					if v := h.localObj(rhs); v != nil {
						delete(out, v)
					}
				}
				continue
			}
		}

		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			v := h.fi.info.ObjectOf(id)
			if v == nil {
				continue
			}
			// v := m[k] over a tracked map binds v.
			if rhs != nil {
				if idx, ok := ast.Unparen(rhs).(*ast.IndexExpr); ok {
					if mobj := resourceID(h.fi.info, idx.X); mobj != nil && h.tracked[mobj] {
						out[v] = handleVar{st: hBound, m: mobj, key: resourceID(h.fi.info, idx.Index), pos: n.Pos()}
						continue
					}
				}
			}
			// Any other rebinding forgets the old value.
			delete(out, v)
			continue
		}

		// Store into a field, slice or untracked map: the handle escapes.
		if rhs != nil {
			if v := h.localObj(rhs); v != nil {
				delete(out, v)
			}
		}
	}
}

func (h *handleonce) call(n *ast.CallExpr, out handleState) {
	// delete(m, k) on a tracked map.
	if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
		if _, isBuiltin := h.fi.info.Uses[id].(*types.Builtin); isBuiltin {
			mobj := resourceID(h.fi.info, n.Args[0])
			if mobj == nil || !h.tracked[mobj] {
				return
			}
			elem := elemStruct(mobj.Type())
			dkey := resourceID(h.fi.info, n.Args[1])
			// Variables bound to this map under the same key (or a key
			// the analysis cannot resolve) owe a settlement now; a bind
			// under a provably different key is another entry.
			for v, hv := range out {
				if hv.st != hBound || hv.m != mobj {
					continue
				}
				if hv.key != nil && dkey != nil && hv.key != dkey {
					continue
				}
				out[v] = handleVar{st: hDetached, m: mobj, key: hv.key, pos: n.Pos()}
			}
			// delete(m, x.field): x holds the detached handle.
			if sel, ok := ast.Unparen(n.Args[1]).(*ast.SelectorExpr); ok {
				if base := baseIdent(sel.X); base != nil && base.Name != "_" {
					x := h.fi.info.ObjectOf(base)
					if x != nil && sameElemType(x.Type(), elem) {
						out[x] = handleVar{st: hDetached, m: mobj, pos: n.Pos()}
					}
				}
			}
			return
		}
	}

	// A Complete() or Trigger() method call rooted at v settles v.
	if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
		if fn, isFn := h.fi.info.Uses[sel.Sel].(*types.Func); isFn && settleMethod(fn.Name()) {
			if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
				if base := baseIdent(sel.X); base != nil {
					if v := h.fi.info.ObjectOf(base); v != nil {
						if _, trackedVar := out[v]; trackedVar {
							h.settle(out, v, n.Pos())
							return
						}
					}
				}
			}
		}
		// q.Send(p, v) / q.TrySend(v) hands the handle to a queue.
		if fn, isFn := h.fi.info.Uses[sel.Sel].(*types.Func); isFn && (fn.Name() == "Send" || fn.Name() == "TrySend") {
			for _, a := range n.Args {
				if v := h.localObj(a); v != nil {
					if _, trackedVar := out[v]; trackedVar {
						h.settle(out, v, n.Pos())
					}
				}
			}
			return
		}
	}

	// Same-package callee: its summary says which params it may settle.
	if _, callee := h.fi.staticCallee(n); callee != nil {
		mask := h.summary(callee)
		for i, a := range n.Args {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			if v := h.localObj(a); v != nil {
				h.settle(out, v, n.Pos())
			}
		}
	}
	// Calls the package cannot see into (function-typed values, other
	// packages) deliberately leave the state unchanged.
}

// settleMethod reports whether a method name is a settlement verb: the
// completion callback on a request (Complete) or the wake-up on a
// parked waiter's event (Trigger).
func settleMethod(name string) bool { return name == "Complete" || name == "Trigger" }

// sameElemType reports whether t (possibly a pointer) is the named
// struct elem.
func sameElemType(t types.Type, elem *types.Named) bool {
	if elem == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == elem.Obj()
}

// literalEffects models a function literal mentioning tracked variables:
// if its body settles the variable the capture IS the settlement
// (scheduled requeue callbacks); otherwise the variable escapes into the
// closure and tracking ends.
func (h *handleonce) literalEffects(lit *ast.FuncLit, out handleState) {
	mentioned := map[types.Object]bool{}
	settles := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v := h.fi.info.ObjectOf(n); v != nil {
				if _, trackedVar := out[v]; trackedVar {
					mentioned[v] = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if mobj := resourceID(h.fi.info, idx.X); mobj != nil && h.tracked[mobj] {
					if v := h.localObj(n.Rhs[i]); v != nil {
						settles[v] = true
					}
				}
			}
		case *ast.SendStmt:
			if v := h.localObj(n.Value); v != nil {
				settles[v] = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fn, isFn := h.fi.info.Uses[sel.Sel].(*types.Func); isFn {
					switch {
					case settleMethod(fn.Name()):
						if base := baseIdent(sel.X); base != nil {
							if v := h.fi.info.ObjectOf(base); v != nil {
								settles[v] = true
							}
						}
					case fn.Name() == "Send" || fn.Name() == "TrySend":
						for _, a := range n.Args {
							if v := h.localObj(a); v != nil {
								settles[v] = true
							}
						}
					}
				}
			}
		}
		return true
	})
	for v := range mentioned {
		if settles[v] {
			h.settle(out, v, lit.Pos())
		} else {
			delete(out, v)
		}
	}
}

// summary computes (memoized, recursion-guarded) the bitmask of
// parameters a function may settle, propagating a flow-insensitive
// taint from parameters through simple assignments.
func (h *handleonce) summary(fd *ast.FuncDecl) int {
	if mask, done := h.summaries[fd]; done {
		return mask
	}
	if h.inProgress[fd] {
		return 0
	}
	h.inProgress[fd] = true
	defer func() { h.inProgress[fd] = false }()

	// taint: object -> bitmask of originating parameter indices.
	taint := map[types.Object]int{}
	fn, isFn := h.fi.info.Defs[fd.Name].(*types.Func)
	if !isFn {
		h.summaries[fd] = 0
		return 0
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		taint[sig.Params().At(i)] = 1 << uint(i)
	}

	baseTaint := func(e ast.Expr) int {
		if base := baseIdent(e); base != nil {
			if v := h.fi.info.ObjectOf(base); v != nil {
				return taint[v]
			}
		}
		return 0
	}

	// Propagate taint through assignments to fixpoint.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, isIdent := ast.Unparen(lhs).(*ast.Ident)
				if !isIdent {
					continue
				}
				v := h.fi.info.ObjectOf(id)
				if v == nil {
					continue
				}
				if t := baseTaint(as.Rhs[i]); t&^taint[v] != 0 {
					taint[v] |= t
					changed = true
				}
			}
			return true
		})
	}

	mask := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if mobj := resourceID(h.fi.info, idx.X); mobj != nil && h.tracked[mobj] {
					mask |= baseTaint(n.Rhs[i])
				}
			}
		case *ast.SendStmt:
			mask |= baseTaint(n.Value)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fnUse, isFn := h.fi.info.Uses[sel.Sel].(*types.Func); isFn {
					switch {
					case settleMethod(fnUse.Name()):
						mask |= baseTaint(sel.X)
					case fnUse.Name() == "Send" || fnUse.Name() == "TrySend":
						for _, a := range n.Args {
							mask |= baseTaint(a)
						}
					}
				}
			}
			if _, callee := h.fi.staticCallee(n); callee != nil && callee != fd {
				sub := h.summary(callee)
				for i, a := range n.Args {
					if sub&(1<<uint(i)) != 0 {
						if id, isIdent := ast.Unparen(a).(*ast.Ident); isIdent {
							if v := h.fi.info.ObjectOf(id); v != nil {
								mask |= taint[v]
							}
						}
					}
				}
			}
		}
		return true
	})
	h.summaries[fd] = mask
	return mask
}
