package lint

import (
	"go/ast"
	"go/types"

	"hpbd/internal/lint/analysis"
)

const telemetryPkgPath = "hpbd/internal/telemetry"

// telemetryHandles are the types whose nil-safety contract depends on
// construction going through the registry (or New/NewWithClock): a
// struct-literal Counter has no name and never aggregates into a Summary,
// and hand-rolled construction is exactly the kind of drift the nil-safe
// design exists to prevent.
var telemetryHandles = map[string]bool{
	"Registry": true, "Counter": true, "Gauge": true,
	"Histogram": true, "Tracer": true,
	"Lifecycle": true, "FlightRecorder": true,
}

// Telemetrynil requires telemetry handles to come from the nil-safe
// registry constructors (telemetry.New, Registry.Counter/Gauge/Histogram,
// Registry.EnableTracing), never from struct literals or new().
var Telemetrynil = &analysis.Analyzer{
	Name: "telemetrynil",
	Doc: "telemetry handles must come from the nil-safe registry " +
		"constructors, not struct literals or new()",
	Run: runTelemetrynil,
}

func runTelemetrynil(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if name := telemetryHandleName(pass.TypesInfo.TypeOf(n)); name != "" {
					pass.ReportRangef(n, "telemetry.%s constructed as a struct literal; obtain it from the nil-safe registry (telemetry.New / Registry.%s)", name, constructorFor(name))
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || id.Name != "new" || len(n.Args) != 1 {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if name := telemetryHandleName(pass.TypesInfo.TypeOf(n.Args[0])); name != "" {
					pass.ReportRangef(n, "new(telemetry.%s) bypasses the nil-safe registry; obtain it from telemetry.New / Registry.%s", name, constructorFor(name))
				}
			}
			return true
		})
	}
	return nil, nil
}

// telemetryHandleName returns the handle type's name when t (possibly
// behind a pointer) is one of the guarded telemetry types, else "".
func telemetryHandleName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != telemetryPkgPath || !telemetryHandles[obj.Name()] {
		return ""
	}
	return obj.Name()
}

func constructorFor(name string) string {
	switch name {
	case "Registry":
		return "— use telemetry.New(env)"
	case "Tracer":
		return "EnableTracing()"
	case "Lifecycle":
		return "EnableLifecycle(n)"
	case "FlightRecorder":
		return "EnableLifecycle(n).Flight()"
	default:
		return name + "(name)"
	}
}
