package health_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/cluster"
	"hpbd/internal/faultsim"
	"hpbd/internal/health"
	"hpbd/internal/hpbd"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// chaosSchedule is the plain-device incident script: four disjoint
// incidents, each shaped to trip exactly one anomaly detector.
//
//	2ms   hang mem0 for 1ms        -> credit-starvation
//	9ms   4 short RNR bursts       -> rnr-retry-storm
//	12ms  pool exhausted for 1.5ms -> pool-exhaustion
//	15ms  ODP invalidation train   -> odp-fault-thrash
func chaosSchedule() *faultsim.Schedule {
	var faults []faultsim.Fault
	faults = append(faults,
		faultsim.Fault{At: 2 * sim.Millisecond, Kind: faultsim.KindHang, Dur: 1 * sim.Millisecond, Target: "mem0"},
	)
	for k := 0; k < 4; k++ {
		faults = append(faults, faultsim.Fault{
			At:   9*sim.Millisecond + sim.Duration(k)*100*sim.Microsecond,
			Kind: faultsim.KindSendErr, Count: 2, Target: "hpbd0",
		})
	}
	faults = append(faults,
		faultsim.Fault{At: 12 * sim.Millisecond, Kind: faultsim.KindPoolExhaust, Dur: 1500 * sim.Microsecond, Target: "hpbd0"},
	)
	for k := 0; k < 40; k++ {
		faults = append(faults, faultsim.Fault{
			At:   15*sim.Millisecond + sim.Duration(k)*25*sim.Microsecond,
			Kind: faultsim.KindODPInval, Target: "hpbd0"},
		)
	}
	return &faultsim.Schedule{Faults: faults}
}

// runChaos drives the chaos scenario: a two-server plain HPBD device
// under a steady background of small and large writes, with concurrent
// write bursts aimed at each incident window. Health samples every 100us.
// When withHealth is false the same run executes without a monitor (the
// passivity control). The returned buffer holds any flight-recorder
// dumps the SLO tracker triggered.
func runChaos(t *testing.T, withHealth bool) (*cluster.Node, *bytes.Buffer) {
	t.Helper()
	env := sim.NewEnv()
	ccfg := hpbd.DefaultClientConfig()
	ccfg.PoolBytes = 256 << 10
	ccfg.Credits = 8
	ccfg.HybridDataPath = true
	ccfg.HybridThresholdBytes = 32 << 10
	ccfg.ODP = true
	ccfg.MRCacheEntries = 6
	ccfg.MaxRetries = 4
	ccfg.RequestTimeout = 5 * sim.Millisecond
	cfg := cluster.Config{
		MemBytes:  8 << 20,
		Swap:      cluster.SwapHPBD,
		SwapBytes: 8 << 20,
		Servers:   2,
		Faults:    chaosSchedule(),
		Client:    &ccfg,
	}
	if withHealth {
		cfg.Health = &health.Config{SampleInterval: 100 * sim.Microsecond, RingSize: 1024}
	}
	node, err := cluster.Build(env, cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	dumped := &bytes.Buffer{}
	node.Tel.Lifecycle().Flight().SetDumpWriter(dumped)

	const runFor = 18 * sim.Millisecond
	sectors := node.Queue.Driver().Sectors()
	half := sectors / 2
	submit := func(p *sim.Proc, sector int64, buf []byte) *blockdev.IO {
		io, err := node.Queue.Submit(true, sector, buf)
		if err != nil {
			t.Errorf("submit sector %d: %v", sector, err)
			return nil
		}
		node.Queue.Unplug()
		return io
	}
	// Steady background: six 4KB writers (three per server half) stay
	// under the credit window and far under the pool, so the baseline
	// between incidents is quiet.
	for w := 0; w < 6; w++ {
		w := w
		env.Go(fmt.Sprintf("bg%d", w), func(p *sim.Proc) {
			node.Ready.Wait(p)
			buf := make([]byte, 4096)
			base := int64(0)
			if w >= 3 {
				base = half
			}
			sector := base + int64(w%3)*64
			t0 := p.Now()
			for p.Now().Sub(t0) < runFor {
				io := submit(p, sector, buf)
				if io == nil {
					return
				}
				io.Wait(p)
				sector = base + (sector-base+3*64)%(half/2)
			}
		})
	}
	// Two 128KB writers (one per half) ride the hybrid ODP MR path — the
	// surface the invalidation train attacks.
	for w := 0; w < 2; w++ {
		w := w
		env.Go(fmt.Sprintf("big%d", w), func(p *sim.Proc) {
			node.Ready.Wait(p)
			buf := make([]byte, 128<<10)
			base := int64(w)*half + half/2
			sector := base
			t0 := p.Now()
			for p.Now().Sub(t0) < runFor {
				io := submit(p, sector, buf)
				if io == nil {
					return
				}
				io.Wait(p)
				sector = base + (sector-base+256)%(half/4)
			}
		})
	}
	burst := func(name string, at sim.Duration, n, sz int, sector func(i int) int64) {
		env.Go(name, func(p *sim.Proc) {
			node.Ready.Wait(p)
			p.Sleep(at)
			buf := make([]byte, sz)
			var ios []*blockdev.IO
			for i := 0; i < n; i++ {
				io, err := node.Queue.Submit(true, sector(i), buf)
				if err != nil {
					t.Errorf("%s submit: %v", name, err)
					return
				}
				ios = append(ios, io)
			}
			node.Queue.Unplug()
			for _, io := range ios {
				io.Wait(p)
			}
		})
	}
	// Credit burst: 24 concurrent writes at the hung mem0 overrun its
	// 8-credit window; the stalls resolve when the hang lifts.
	burst("burst-credit", 2050*sim.Microsecond, 24, 4096, func(i int) int64 {
		return 1024 + int64(i)*64%(half/4)
	})
	// Pool burst: 48 concurrent 16KB stagings against an exhausted pool
	// turn every allocation into a block-wake cycle.
	burst("burst-pool", 12050*sim.Microsecond, 48, 16<<10, func(i int) int64 {
		return 2048 + int64(i)*64%(half/4)
	})
	// ODP burst: 16 concurrent 128KB hybrid-path writes across both
	// halves while the inval train keeps dropping their windows.
	burst("burst-odp", 15050*sim.Microsecond, 16, 128<<10, func(i int) int64 {
		return int64(i%2)*half + half/4 + int64(i/2)*512
	})
	env.Run()
	env.Close()
	return node, dumped
}

// firstFire returns the sim time the named rule first fired, or -1.
func firstFire(alerts []health.Alert, kind, name string) sim.Time {
	for _, a := range alerts {
		if a.Kind == kind && a.Name == name {
			return a.At
		}
	}
	return -1
}

// TestChaosRulesFire asserts the acceptance scenario: four distinct
// anomaly rules fire, each pinned inside its incident's window, with a
// quiet baseline before the first fault and an SLO burn (plus flight
// dump) from the hang.
func TestChaosRulesFire(t *testing.T) {
	node, dumped := runChaos(t, true)
	alerts := node.Health.Alerts()

	windows := []struct {
		rule     string
		from, to sim.Duration
	}{
		{"credit-starvation", 2 * sim.Millisecond, 4 * sim.Millisecond},
		{"rnr-retry-storm", 9 * sim.Millisecond, 10 * sim.Millisecond},
		{"pool-exhaustion", 12 * sim.Millisecond, 14 * sim.Millisecond},
		{"odp-fault-thrash", 15 * sim.Millisecond, 16 * sim.Millisecond},
	}
	for _, w := range windows {
		at := firstFire(alerts, "rule", w.rule)
		if at < 0 {
			t.Errorf("rule %s never fired\n%s", w.rule, node.Health.Timeline())
			continue
		}
		if at < sim.Time(w.from) || at > sim.Time(w.to) {
			t.Errorf("rule %s first fired at %v, want within [%v, %v]", w.rule, at, w.from, w.to)
		}
	}
	// The baseline before the first fault must be alert-free.
	for _, a := range alerts {
		if a.At < sim.Time(2*sim.Millisecond) {
			t.Errorf("alert %s/%s fired at %v, before the first fault", a.Kind, a.Name, a.At)
		}
	}
	// The hang pushes req.e2e p99 far over the objective: the SLO burns
	// and the first breach dumps the flight recorder.
	if at := firstFire(alerts, "slo", "req-e2e-p99"); at < 0 || at > sim.Time(4*sim.Millisecond) {
		t.Errorf("req-e2e-p99 burn at %v, want within the hang incident", at)
	}
	if node.Tel.Counter("health.slo_burns").Value() == 0 {
		t.Error("health.slo_burns stayed zero")
	}
	if node.Tel.Lifecycle().Flight().Dumps() == 0 {
		t.Error("SLO breach did not dump the flight recorder")
	}
	if !strings.Contains(dumped.String(), "burn-rate breach") {
		t.Errorf("flight dump does not mention the breach:\n%.300s", dumped.String())
	}
	// Each incident left its signature counter behind.
	for _, c := range []string{"hpbd.credit_stalls", "hpbd.retries", "pool.alloc.waits", "odp.faults"} {
		if node.Tel.Counter(c).Value() == 0 {
			t.Errorf("counter %s stayed zero", c)
		}
	}
	if got := node.Tel.Counter("hpbd.link_failures").Value(); got != 0 {
		t.Errorf("chaos run lost %d links; incidents must all be recoverable", got)
	}
}

// runMirrorCrash is the crash-schedule scenario: a mirrored two-server
// node, steady write load, one side's first-half server crashed at 6ms.
func runMirrorCrash(t *testing.T) *cluster.Node {
	t.Helper()
	sched, err := faultsim.ParseSpec("crash@6ms=mem0")
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	env := sim.NewEnv()
	cfg := cluster.Config{
		MemBytes:  8 << 20,
		Swap:      cluster.SwapHPBD,
		SwapBytes: 8 << 20,
		Servers:   2,
		Mirror:    true,
		Faults:    sched,
		Health:    &health.Config{SampleInterval: 100 * sim.Microsecond, RingSize: 1024},
	}
	node, err := cluster.Build(env, cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	half := node.Queue.Driver().Sectors() / 2
	for w := 0; w < 4; w++ {
		w := w
		env.Go(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
			node.Ready.Wait(p)
			buf := make([]byte, 4096)
			base := int64(w%2) * half
			sector := base + int64(w/2)*64
			t0 := p.Now()
			for p.Now().Sub(t0) < 12*sim.Millisecond {
				io, err := node.Queue.Submit(true, sector, buf)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				node.Queue.Unplug()
				io.Wait(p)
				sector = base + (sector-base+2*64)%(half/2)
			}
		})
	}
	env.Run()
	env.Close()
	return node
}

// TestChaosMirrorCrashDivergence asserts the crash schedule trips the
// mirror-divergence detector once (edge-triggered: a crashed replica
// degrades every later write, which is one incident, not hundreds).
func TestChaosMirrorCrashDivergence(t *testing.T) {
	node := runMirrorCrash(t)
	alerts := node.Health.Alerts()
	at := firstFire(alerts, "rule", "mirror-divergence")
	if at < 0 {
		t.Fatalf("mirror-divergence never fired\n%s", node.Health.Timeline())
	}
	if at < sim.Time(6*sim.Millisecond) || at > sim.Time(8*sim.Millisecond) {
		t.Errorf("mirror-divergence first fired at %v, want within [6ms, 8ms]", at)
	}
	fires := 0
	for _, a := range alerts {
		if a.Kind == "rule" && a.Name == "mirror-divergence" {
			fires++
		}
	}
	if fires != 1 {
		t.Errorf("mirror-divergence fired %d times, want exactly 1:\n%s", fires, node.Health.Timeline())
	}
	if node.Tel.Counter("mirror.degraded_writes").Value() == 0 {
		t.Error("mirror.degraded_writes stayed zero")
	}
}

// healthArtifacts renders every deterministic health surface of a node
// into one byte string: the sample-ring CSV, the periodic OpenMetrics
// pages, the alert timeline, and the operator report.
func healthArtifacts(t *testing.T, node *cluster.Node) string {
	t.Helper()
	var b strings.Builder
	if err := node.Health.Ring().WriteCSV(&b); err != nil {
		t.Fatalf("ring csv: %v", err)
	}
	if err := node.Health.Ring().WriteOpenMetricsPages(&b); err != nil {
		t.Fatalf("ring pages: %v", err)
	}
	b.WriteString(node.Health.Timeline())
	b.WriteString(node.Health.Report())
	return b.String()
}

// TestDeterministicReplayHealth is the acceptance-criteria replay proof:
// two seeded runs of the chaos scenario — and two of the faultsim crash
// schedule — produce byte-identical sample rings, alert timelines and
// reports.
func TestDeterministicReplayHealth(t *testing.T) {
	nodeA, _ := runChaos(t, true)
	nodeB, _ := runChaos(t, true)
	a, b := healthArtifacts(t, nodeA), healthArtifacts(t, nodeB)
	if a != b {
		t.Errorf("chaos replay diverged:\n%s", firstDiff(a, b))
	}
	crashA := runMirrorCrash(t)
	crashB := runMirrorCrash(t)
	a, b = healthArtifacts(t, crashA), healthArtifacts(t, crashB)
	if a != b {
		t.Errorf("crash-schedule replay diverged:\n%s", firstDiff(a, b))
	}
}

// firstDiff locates the first differing line of two renderings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  run A: %s\n  run B: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestHealthPassive proves the sampler only reads: the same chaos run
// with and without the monitor finishes with identical workload-side
// counters, gauges and histograms (only health.* series may differ).
func TestHealthPassive(t *testing.T) {
	on, _ := runChaos(t, true)
	off, _ := runChaos(t, false)
	if off.Health != nil {
		t.Fatal("control run unexpectedly has a monitor")
	}
	on.Tel.VisitCounters(func(name string, v int64) {
		if strings.HasPrefix(name, "health.") {
			return
		}
		if got := off.Tel.Counter(name).Value(); got != v {
			t.Errorf("counter %s: health-on %d, health-off %d", name, v, got)
		}
	})
	on.Tel.VisitGauges(func(name string, v, peak int64) {
		if got := off.Tel.Gauge(name).Value(); got != v {
			t.Errorf("gauge %s: health-on %d, health-off %d", name, v, got)
		}
	})
	on.Tel.VisitHistograms(func(name string, h *telemetry.Histogram) {
		want := h.Snapshot()
		got := off.Tel.Histogram(name).Snapshot()
		if got.N != want.N || got.Sum != want.Sum {
			t.Errorf("histogram %s: health-on N=%d Sum=%v, health-off N=%d Sum=%v",
				name, want.N, want.Sum, got.N, got.Sum)
		}
	})
}
