package health

import (
	"bytes"
	"strings"
	"testing"

	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(3)
	if r.Last() != nil || r.At(0) != nil || r.FromLast(1) != nil {
		t.Fatal("empty ring must return nil samples")
	}
	for i := 1; i <= 5; i++ {
		r.Push(Sample{At: sim.Time(i)})
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("Len=%d Total=%d, want 3/5", r.Len(), r.Total())
	}
	// Retained: samples at t=3,4,5 oldest first.
	for i, want := range []sim.Time{3, 4, 5} {
		if got := r.At(i).At; got != want {
			t.Fatalf("At(%d).At = %d, want %d", i, got, want)
		}
	}
	if r.Last().At != 5 {
		t.Fatalf("Last().At = %d", r.Last().At)
	}
	if r.FromLast(1).At != 4 || r.FromLast(10).At != 3 {
		t.Fatalf("FromLast wrong: %d %d", r.FromLast(1).At, r.FromLast(10).At)
	}
}

// TestSamplerParksAndDrains: the sampler wakes on Kick, samples while
// metrics move, parks after IdleTicks quiet samples — and therefore
// does not keep env.Run from returning.
func TestSamplerParksAndDrains(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	m := NewMonitor(env, reg, Config{SampleInterval: 10 * sim.Microsecond})
	m.Start()

	reqs := reg.Counter("test.reqs")
	env.Go("workload", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			reqs.Inc()
			m.Kick()
			p.Sleep(10 * sim.Microsecond)
		}
	})
	env.Run() // must return: sampler parks once the workload stops
	if got := reg.Counter("health.samples").Value(); got < 3 {
		t.Fatalf("expected >= 3 samples, got %d", got)
	}
	if !m.parked {
		t.Fatal("sampler did not park after idle ticks")
	}
	if m.ring.Len() == 0 {
		t.Fatal("ring empty after run")
	}
	if last := m.ring.Last(); last.Counters["test.reqs"] != 5 {
		t.Fatalf("last sample test.reqs = %d, want 5", last.Counters["test.reqs"])
	}
}

// TestSLOBurnFires: sustained over-threshold latency trips the latency
// objective's burn-rate alert exactly once per incident, and the first
// breach dumps the flight recorder.
func TestSLOBurnFires(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	var dumped bytes.Buffer
	reg.EnableLifecycle(8)
	reg.Lifecycle().Flight().SetDumpWriter(&dumped)
	m := NewMonitor(env, reg, Config{
		SampleInterval: 10 * sim.Microsecond,
		SLOs: []SLO{{
			Name: "lat", Metric: "req.e2e", Quantile: 0.99,
			Threshold: 100 * sim.Microsecond,
		}},
		Rules: []Rule{}, // rules off: isolate the SLO path
	})
	m.Start()
	h := reg.Histogram("req.e2e")
	env.Go("workload", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			h.Observe(500 * sim.Microsecond) // every request blows the budget
			m.Kick()
			p.Sleep(10 * sim.Microsecond)
		}
	})
	env.Run()

	var burns int
	for _, a := range m.Alerts() {
		if a.Kind != "slo" || a.Name != "lat" {
			t.Fatalf("unexpected alert %+v", a)
		}
		burns++
	}
	if burns != 1 {
		t.Fatalf("expected exactly 1 burn alert for one sustained incident, got %d: %v", burns, m.Alerts())
	}
	if reg.Counter("health.slo_burns").Value() != 1 {
		t.Fatalf("health.slo_burns = %d", reg.Counter("health.slo_burns").Value())
	}
	if reg.Lifecycle().Flight().Dumps() != 1 || !strings.Contains(dumped.String(), "slo lat burn-rate breach") {
		t.Fatalf("expected one flight-recorder dump on first breach, got %d: %q",
			reg.Lifecycle().Flight().Dumps(), dumped.String())
	}
	stats := m.SLOStats()
	if len(stats) != 1 || stats[0].Compliance >= 1 || stats[0].WorstBurn < 1 {
		t.Fatalf("compliance accounting wrong: %+v", stats)
	}
}

// TestSLOQuietWorkload: an in-budget workload fires nothing and reports
// full compliance.
func TestSLOQuietWorkload(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	m := NewMonitor(env, reg, Config{SampleInterval: 10 * sim.Microsecond})
	m.Start()
	h := reg.Histogram("req.e2e")
	env.Go("workload", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			h.Observe(50 * sim.Microsecond)
			m.Kick()
			p.Sleep(10 * sim.Microsecond)
		}
	})
	env.Run()
	if len(m.Alerts()) != 0 {
		t.Fatalf("quiet workload fired alerts: %v", m.Alerts())
	}
	for _, st := range m.SLOStats() {
		if st.Compliance != 1 {
			t.Fatalf("quiet workload not fully compliant: %+v", st)
		}
	}
}

// TestRuleFiresWithCooldown: a sustained anomaly reads as one incident
// per cooldown span, not one alert per sample.
func TestRuleFiresWithCooldown(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	m := NewMonitor(env, reg, Config{
		SampleInterval: 10 * sim.Microsecond,
		SLOs:           []SLO{},
		Rules: []Rule{{
			Name: "retry-storm", Cooldown: 100, // suppress refires for the whole run
			Check: func(w Window) (string, bool) {
				return "storm", w.CounterDelta("hpbd.retries") >= 3
			},
		}},
	})
	m.Start()
	retries := reg.Counter("hpbd.retries")
	env.Go("workload", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			retries.Add(5) // 5 per interval: over threshold every sample
			m.Kick()
			p.Sleep(10 * sim.Microsecond)
		}
	})
	env.Run()
	if len(m.Alerts()) != 1 {
		t.Fatalf("expected 1 alert under cooldown, got %d: %v", len(m.Alerts()), m.Alerts())
	}
	a := m.Alerts()[0]
	if a.Kind != "rule" || a.Name != "retry-storm" || a.Detail != "storm" {
		t.Fatalf("unexpected alert %+v", a)
	}
	if got := m.RuleStats()[0].Fired; got != 1 {
		t.Fatalf("RuleStats fired = %d", got)
	}
}

// TestDefaultRulesQuiet: the stock catalogue stays silent on a healthy
// steady-state workload.
func TestDefaultRulesQuiet(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	m := NewMonitor(env, reg, Config{SampleInterval: 10 * sim.Microsecond})
	m.Start()
	h := reg.Histogram("req.e2e")
	stall := reg.Histogram("req.stage.credit_stall")
	env.Go("workload", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			h.Observe(200 * sim.Microsecond)
			stall.Observe(5 * sim.Microsecond) // small, healthy share
			reg.Counter("hpbd.retries").Add(0)
			m.Kick()
			p.Sleep(10 * sim.Microsecond)
		}
	})
	env.Run()
	for _, a := range m.Alerts() {
		if a.Kind == "rule" {
			t.Fatalf("healthy workload tripped rule %s: %s", a.Name, a.Detail)
		}
	}
}

// TestWriteCSVDeterministic: two identical seeded runs export
// byte-identical time series, and the CSV carries windowed histogram
// quantiles.
func TestWriteCSVDeterministic(t *testing.T) {
	run := func() (*Monitor, string, string) {
		env := sim.NewEnv()
		reg := telemetry.New(env)
		m := NewMonitor(env, reg, Config{SampleInterval: 10 * sim.Microsecond})
		m.Start()
		h := reg.Histogram("req.e2e")
		env.Go("workload", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				reg.Counter("mem0.requests").Inc()
				h.Observe(sim.Duration(100+10*i) * sim.Microsecond)
				m.Kick()
				p.Sleep(10 * sim.Microsecond)
			}
		})
		env.Run()
		var buf bytes.Buffer
		if err := m.Ring().WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return m, buf.String(), m.Timeline()
	}
	m1, csv1, tl1 := run()
	_, csv2, tl2 := run()
	if csv1 != csv2 {
		t.Fatalf("sample CSV not deterministic:\n%s\nvs\n%s", csv1, csv2)
	}
	if tl1 != tl2 {
		t.Fatalf("timeline not deterministic:\n%s\nvs\n%s", tl1, tl2)
	}
	if !strings.HasPrefix(csv1, "t_us,epoch,kind,name,value,delta,p50_us,p99_us\n") {
		t.Fatalf("bad CSV header:\n%s", csv1)
	}
	if !strings.Contains(csv1, ",counter,mem0.requests,") || !strings.Contains(csv1, ",hist,req.e2e,") {
		t.Fatalf("CSV missing expected rows:\n%s", csv1)
	}
	if m1.Report() == "" || !strings.Contains(m1.Report(), "slo compliance") {
		t.Fatal("Report missing sections")
	}
}

// TestWriteOpenMetricsPages: the ring exports one OpenMetrics page per
// retained sample, each a self-contained exposition with sanitized
// family names that line up with the registry's live WriteOpenMetrics.
func TestWriteOpenMetricsPages(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	m := NewMonitor(env, reg, Config{SampleInterval: 10 * sim.Microsecond})
	m.Start()
	h := reg.Histogram("req.e2e")
	env.Go("workload", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			reg.Counter("mem0.requests").Inc()
			reg.Gauge("pool.in_use").Set(int64(i))
			h.Observe(100 * sim.Microsecond)
			m.Kick()
			p.Sleep(10 * sim.Microsecond)
		}
	})
	env.Run()
	var buf bytes.Buffer
	if err := m.Ring().WriteOpenMetricsPages(&buf); err != nil {
		t.Fatal(err)
	}
	pages := buf.String()
	if got := strings.Count(pages, "# EOF\n"); got != m.Ring().Len() {
		t.Fatalf("got %d pages for %d retained samples:\n%s", got, m.Ring().Len(), pages)
	}
	if !strings.HasPrefix(pages, "# page 0 t_us=") {
		t.Fatalf("missing page header:\n%s", pages)
	}
	for _, want := range []string{
		"# TYPE mem0_requests counter\n", "mem0_requests_total 8\n",
		"# TYPE pool_in_use gauge\n",
		"# TYPE req_e2e_seconds histogram\n", "req_e2e_seconds_count 8\n",
	} {
		if !strings.Contains(pages, want) {
			t.Fatalf("pages missing %q:\n%s", want, pages)
		}
	}
}

// TestFleetRollupEpochs: per-server deltas split across placement
// epochs, and the top table orders by request volume.
func TestFleetRollupEpochs(t *testing.T) {
	env := sim.NewEnv()
	reg := telemetry.New(env)
	m := NewMonitor(env, reg, Config{SampleInterval: 10 * sim.Microsecond})
	m.Start()
	epoch := reg.Gauge("placement.epoch")
	m0 := reg.Counter("mem0.requests")
	m1 := reg.Counter("mem1.requests")
	reg.Counter("mem0.bytes_stored") // register so rollup sees the family
	env.Go("workload", func(p *sim.Proc) {
		epoch.Set(1)
		for i := 0; i < 6; i++ {
			m0.Add(10)
			m1.Add(2)
			m.Kick()
			p.Sleep(10 * sim.Microsecond)
		}
		epoch.Set(2)
		for i := 0; i < 6; i++ {
			m1.Add(10)
			m.Kick()
			p.Sleep(10 * sim.Microsecond)
		}
	})
	env.Run()
	rows := m.FleetRollup()
	byKey := map[string]int64{}
	for _, r := range rows {
		byKey[r.Name+"@"+string(rune('0'+r.Epoch))] = r.Requests
	}
	if byKey["mem0@1"] == 0 || byKey["mem1@2"] == 0 {
		t.Fatalf("rollup missing epoch rows: %+v", rows)
	}
	if byKey["mem0@2"] >= byKey["mem1@2"] {
		t.Fatalf("epoch 2 load should live on mem1: %+v", rows)
	}
	top := m.TopTable()
	if !strings.Contains(top, "mem0") || !strings.Contains(top, "mem1") {
		t.Fatalf("top table missing servers:\n%s", top)
	}
}

// TestNilMonitorKick: Kick on a nil monitor (health off) is a no-op.
func TestNilMonitorKick(t *testing.T) {
	var m *Monitor
	m.Kick() // must not panic
	if m.SLOSummary() != "" {
		t.Fatal("nil SLOSummary not empty")
	}
}
