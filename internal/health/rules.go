package health

import (
	"fmt"

	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// Window is the rule engine's view of one evaluation interval: the
// newest sample and the sample Rule.Window steps earlier. Rules read
// metric movement through its accessors and never touch the registry, so
// a rule is a pure function of the ring — replaying the same seed and
// fault schedule replays the same verdicts at the same sim times.
type Window struct {
	Cur, Prev *Sample
}

// CounterDelta returns how much a counter advanced across the window.
func (w Window) CounterDelta(name string) int64 {
	return w.Cur.Counters[name] - w.Prev.Counters[name]
}

// Gauge returns a gauge's level at the window's end.
func (w Window) Gauge(name string) int64 { return w.Cur.Gauges[name] }

// GaugeDelta returns how much a gauge moved across the window.
func (w Window) GaugeDelta(name string) int64 {
	return w.Cur.Gauges[name] - w.Prev.Gauges[name]
}

// HistDelta returns a histogram's windowed snapshot (observations that
// landed inside the window).
func (w Window) HistDelta(name string) telemetry.HistSnapshot {
	return w.Cur.Hists[name].Sub(w.Prev.Hists[name])
}

// Interval returns the window's sim-time span.
func (w Window) Interval() sim.Duration { return sim.Duration(w.Cur.At - w.Prev.At) }

// Rule is one anomaly detector: a named pure predicate over a Window.
// Check returns a human-readable detail line and whether the rule fired.
type Rule struct {
	Name string
	Help string
	// Window is the evaluation span in samples (default 1: consecutive
	// samples).
	Window int
	// Cooldown suppresses re-arming for this many samples after a hit
	// (default 4), so a condition flapping around its threshold reads as
	// one incident per cooldown span instead of an alert per flap.
	Cooldown int
	Check    func(w Window) (detail string, fired bool)
}

// ruleState tracks one rule's edge trigger and hit count.
type ruleState struct {
	rule     Rule
	fired    int64
	lastFire uint64 // ring total at last fire (0: never)
	active   bool   // condition currently holding (suppresses refires)
	hasFired bool
}

// evalRules runs the catalogue against the newest window. Rules are
// edge-triggered: the alert fires when the condition appears, stays
// silent while it holds (a crashed replica degrades every subsequent
// write — that is one incident, not one per sample), and re-arms once a
// window passes with the condition clear, with Cooldown samples of
// hysteresis against flapping.
func (m *Monitor) evalRules(now sim.Time) {
	cur := m.ring.Last()
	for _, st := range m.rules {
		r := st.rule
		win := r.Window
		if win <= 0 {
			win = 1
		}
		cooldown := r.Cooldown
		if cooldown <= 0 {
			cooldown = 4
		}
		prev := m.ring.FromLast(win)
		if cur == nil || prev == nil || cur == prev {
			continue
		}
		detail, fired := r.Check(Window{Cur: cur, Prev: prev})
		if !fired {
			st.active = false
			continue
		}
		if st.active || (st.hasFired && m.ring.Total()-st.lastFire < uint64(cooldown)) {
			st.active = true
			continue
		}
		st.active = true
		st.hasFired = true
		st.fired++
		st.lastFire = m.ring.Total()
		m.fire(now, "rule", r.Name, detail)
	}
}

// RuleStat is one detector's hit count.
type RuleStat struct {
	Rule  Rule
	Fired int64
}

// RuleStats returns per-rule hit counts in catalogue order.
func (m *Monitor) RuleStats() []RuleStat {
	out := make([]RuleStat, 0, len(m.rules))
	for _, st := range m.rules {
		out = append(out, RuleStat{Rule: st.rule, Fired: st.fired})
	}
	return out
}

// DefaultRules returns the stock anomaly catalogue. Thresholds are tuned
// against the paper-scale workloads: quiet runs stay silent, the chaos
// suite's fault schedules trip their matching detectors at pinned sim
// times.
func DefaultRules() []Rule {
	return []Rule{
		{
			// The sender is serial, so accumulated stall time against the
			// window's wall-clock span measures how long it sat blocked on
			// flow control; quiet workloads never stall at all (the credit
			// window is sized to the server's receive depth), so any
			// sustained share is an incident.
			Name:   "credit-starvation",
			Help:   "the send path is spending most of its time blocked on flow-control credits",
			Window: 4,
			Check: func(w Window) (string, bool) {
				iv := w.Interval()
				if iv <= 0 {
					return "", false
				}
				stall := w.HistDelta("req.stage.credit_stall")
				if stall.N < 2 {
					return "", false
				}
				share := float64(stall.Sum) / float64(iv)
				if share < 0.75 {
					return "", false
				}
				return fmt.Sprintf("%d sends stalled %.1fx the window (%v blocked in %v)",
					stall.N, share, stall.Sum, iv), true
			},
		},
		{
			Name:   "rnr-retry-storm",
			Help:   "recovery path is re-sending requests faster than steady state allows",
			Window: 8,
			Check: func(w Window) (string, bool) {
				d := w.CounterDelta("hpbd.retries")
				if d < 4 {
					return "", false
				}
				return fmt.Sprintf("%d retries in %v (timeouts +%d)",
					d, w.Interval(), w.CounterDelta("hpbd.timeouts")), true
			},
		},
		{
			Name:   "migration-dirty-runaway",
			Help:   "live migration dirty-resend rate outpaces copy convergence",
			Window: 8,
			Check: func(w Window) (string, bool) {
				d := w.CounterDelta("migration.dirty_resent")
				if d < 128 {
					return "", false
				}
				return fmt.Sprintf("%d dirty sectors re-sent in %v", d, w.Interval()), true
			},
		},
		{
			// Warm ODP windows fault zero times; the threshold sits above
			// the burst of first-touch faults a freshly grown MR working
			// set pays, so only invalidation churn (or an unbounded working
			// set) trips it.
			Name:     "odp-fault-thrash",
			Help:     "on-demand-paging faults recur instead of amortizing to zero",
			Window:   4,
			Cooldown: 16,
			Check: func(w Window) (string, bool) {
				d := w.CounterDelta("odp.faults")
				if d < 8 {
					return "", false
				}
				return fmt.Sprintf("%d ODP faults in %v", d, w.Interval()), true
			},
		},
		{
			// A crashed replica degrades every later write, so the window
			// and cooldown are wide: the trickle holds the condition and
			// the incident reports once, not once per write.
			Name:     "mirror-divergence",
			Help:     "mirrored writes are being acknowledged by a single replica",
			Window:   16,
			Cooldown: 64,
			Check: func(w Window) (string, bool) {
				d := w.CounterDelta("mirror.degraded_writes")
				if d <= 0 {
					return "", false
				}
				return fmt.Sprintf("%d degraded writes (failovers +%d)",
					d, w.CounterDelta("mirror.read_failovers")), true
			},
		},
		{
			// One exhaustion episode produces a train of block-wake cycles
			// as frees trickle in; the long cooldown reports the episode
			// once.
			Name:     "pool-exhaustion",
			Help:     "staging-pool allocations are blocking on free extents",
			Window:   4,
			Cooldown: 16,
			Check: func(w Window) (string, bool) {
				d := w.CounterDelta("pool.alloc.waits")
				if d < 4 {
					return "", false
				}
				return fmt.Sprintf("%d blocked allocations (in use %dB, largest free %dB)",
					d, w.Gauge("pool.in_use"), w.Gauge("pool.largest_free")), true
			},
		},
	}
}
