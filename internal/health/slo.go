package health

import (
	"fmt"

	"hpbd/internal/sim"
)

// SLO is one declarative service-level objective, in one of two forms:
//
//   - Latency: requests observed by histogram Metric must keep their
//     Quantile below Threshold ("req.e2e p99 < 800us"). The implied
//     error budget is 1-Quantile: at p99, 1% of requests may run long.
//   - Error rate: the ratio of BadCounter to TotalCounter increments must
//     stay below Budget ("timeouts / replies < 0.1%").
//
// Objectives are evaluated per sample over two trailing windows of
// FastWindow and SlowWindow samples — the sim-time analogue of the
// 5m/1h multi-window burn-rate pairing: the fast window catches the
// incident while it is happening, the slow window keeps one noisy
// sample from paging. The burn rate of a window is the fraction of the
// error budget it consumed, normalized so burn == 1 means "spending
// exactly the budget"; the alert fires when the fast burn reaches
// FastBurn AND the slow burn reaches SlowBurn, and re-arms once the
// fast window drops back under budget.
type SLO struct {
	Name string

	// Latency form.
	Metric    string
	Quantile  float64
	Threshold sim.Duration

	// Error-rate form.
	BadCounter   string
	TotalCounter string

	// Budget is the allowed bad fraction. Zero defaults to 1-Quantile
	// for latency objectives and 0.001 for error-rate objectives.
	Budget float64

	// Windows in samples (defaults 4 fast / 16 slow) and the burn-rate
	// firing thresholds (defaults 8 fast / 2 slow).
	FastWindow, SlowWindow int
	FastBurn, SlowBurn     float64
}

func (s SLO) withDefaults() SLO {
	if s.Budget <= 0 {
		if s.Metric != "" {
			s.Budget = 1 - s.Quantile
		} else {
			s.Budget = 0.001
		}
	}
	if s.FastWindow <= 0 {
		s.FastWindow = 4
	}
	if s.SlowWindow <= 0 {
		s.SlowWindow = 16
	}
	if s.FastBurn <= 0 {
		s.FastBurn = 8
	}
	if s.SlowBurn <= 0 {
		s.SlowBurn = 2
	}
	return s
}

// Objective renders the target in one line ("req.e2e p99 < 800us" or
// "hpbd.timeouts/hpbd.replies < 0.100%").
func (s SLO) Objective() string {
	if s.Metric != "" {
		return fmt.Sprintf("%s p%g < %v", s.Metric, s.Quantile*100, s.Threshold)
	}
	return fmt.Sprintf("%s/%s < %.3f%%", s.BadCounter, s.TotalCounter, s.Budget*100)
}

// DefaultSLOs returns the stock objectives: end-to-end request latency
// (p99 under 800us, the healthy multi-server swap envelope at paper
// scale) and the watchdog-timeout error budget.
func DefaultSLOs() []SLO {
	return []SLO{
		{Name: "req-e2e-p99", Metric: "req.e2e", Quantile: 0.99, Threshold: 800 * sim.Microsecond},
		{Name: "req-errors", BadCounter: "hpbd.timeouts", TotalCounter: "hpbd.phys_reqs", Budget: 0.001},
	}
}

// sloState is one objective's tracker: the alert latch plus compliance
// accounting.
type sloState struct {
	slo       SLO
	firing    bool
	breached  bool // ever fired (gates the one-shot flight-recorder dump)
	evaluated int64
	violated  int64 // windows whose fast burn was >= 1 (budget overspent)
	worstBurn float64
	burns     int64
}

func newSLOState(s SLO) *sloState { return &sloState{slo: s.withDefaults()} }

// badFrac computes the bad-event fraction between two samples, and the
// number of total events observed, for one objective.
func (st *sloState) badFrac(cur, prev *Sample) (frac float64, total int64) {
	s := st.slo
	if s.Metric != "" {
		win := cur.Hists[s.Metric].Sub(prev.Hists[s.Metric])
		if win.N <= 0 {
			return 0, 0
		}
		return float64(win.CountAbove(s.Threshold)) / float64(win.N), win.N
	}
	bad := cur.Counters[s.BadCounter] - prev.Counters[s.BadCounter]
	tot := cur.Counters[s.TotalCounter] - prev.Counters[s.TotalCounter]
	if tot <= 0 {
		return 0, 0
	}
	return float64(bad) / float64(tot), tot
}

// evalSLOs runs every objective against the new ring head. Windows with no
// events evaluate as compliant (no traffic spends no budget).
func (m *Monitor) evalSLOs(now sim.Time) {
	for _, st := range m.slos {
		s := st.slo
		fastPrev := m.ring.FromLast(s.FastWindow)
		slowPrev := m.ring.FromLast(s.SlowWindow)
		cur := m.ring.Last()
		if cur == nil || fastPrev == nil || cur == fastPrev {
			continue
		}
		fastFrac, n := st.badFrac(cur, fastPrev)
		slowFrac, _ := st.badFrac(cur, slowPrev)
		fastBurn := fastFrac / s.Budget
		slowBurn := slowFrac / s.Budget
		st.evaluated++
		if fastBurn >= 1 {
			st.violated++
		}
		if fastBurn > st.worstBurn {
			st.worstBurn = fastBurn
		}
		if fastBurn >= s.FastBurn && slowBurn >= s.SlowBurn {
			if !st.firing {
				st.firing = true
				st.burns++
				m.burnCnt.Inc()
				detail := fmt.Sprintf("%s: fast burn %.1fx slow burn %.1fx (budget %.3f%%, %d events)",
					s.Objective(), fastBurn, slowBurn, s.Budget*100, n)
				m.fire(now, "slo", s.Name, detail)
				if !st.breached {
					st.breached = true
					m.reg.Lifecycle().Flight().DumpOnEvent(fmt.Sprintf(
						"slo %s burn-rate breach at %v: %s", s.Name, now, detail))
				}
			}
		} else if fastBurn < 1 {
			st.firing = false
		}
	}
}

// SLOStat is one objective's compliance summary.
type SLOStat struct {
	SLO        SLO
	Evaluated  int64   // windows evaluated
	Violated   int64   // windows that overspent the budget (fast burn >= 1)
	Burns      int64   // burn-rate alerts fired
	WorstBurn  float64 // highest fast-window burn observed
	Compliance float64 // fraction of evaluated windows inside budget
}

// SLOStats returns the per-objective compliance summaries in
// configuration order.
func (m *Monitor) SLOStats() []SLOStat {
	out := make([]SLOStat, 0, len(m.slos))
	for _, st := range m.slos {
		stat := SLOStat{
			SLO: st.slo, Evaluated: st.evaluated, Violated: st.violated,
			Burns: st.burns, WorstBurn: st.worstBurn, Compliance: 1,
		}
		if st.evaluated > 0 {
			stat.Compliance = 1 - float64(st.violated)/float64(st.evaluated)
		}
		out = append(out, stat)
	}
	return out
}

// SLOSummary renders compliance as a compact one-line annotation for
// sweep rows ("req-e2e-p99 99.2% req-errors 100.0%"). Empty when no SLOs
// are configured.
func (m *Monitor) SLOSummary() string {
	if m == nil {
		return ""
	}
	parts := make([]string, 0, len(m.slos))
	for _, stat := range m.SLOStats() {
		parts = append(parts, fmt.Sprintf("%s %.1f%%", stat.SLO.Name, stat.Compliance*100))
	}
	return joinSpace(parts)
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
