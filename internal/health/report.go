package health

import (
	"fmt"
	"sort"
	"strings"

	"hpbd/internal/sim"
)

// ServerStat is one memory server's activity over one placement epoch,
// rebuilt from per-server counter deltas in the sample ring. Servers are
// discovered from the registry itself — any counter family named
// "<server>.requests" with an undotted prefix marks a server — so the
// rollup follows fleet growth without configuration.
type ServerStat struct {
	Name        string
	Epoch       int64
	Requests    int64
	BytesStored int64
	BytesServed int64
	RDMAIssued  int64
	Span        sim.Duration // sim time the server spent in this epoch window
}

// serverNames lists the servers visible in a sample, sorted.
func serverNames(s *Sample) []string {
	var names []string
	for name := range s.Counters {
		if suf := ".requests"; strings.HasSuffix(name, suf) {
			p := name[:len(name)-len(suf)]
			if p != "" && !strings.Contains(p, ".") {
				names = append(names, p)
			}
		}
	}
	sort.Strings(names)
	return names
}

// FleetRollup aggregates per-server activity across the retained ring,
// split by placement epoch: each inter-sample delta is charged to the
// epoch the fleet was in when the later sample landed. Rows come back
// sorted by epoch, then server name.
func (m *Monitor) FleetRollup() []ServerStat {
	type key struct {
		epoch int64
		name  string
	}
	acc := make(map[key]*ServerStat)
	for i := 1; i < m.ring.Len(); i++ {
		cur, prev := m.ring.At(i), m.ring.At(i-1)
		for _, name := range serverNames(cur) {
			k := key{cur.Epoch, name}
			st := acc[k]
			if st == nil {
				st = &ServerStat{Name: name, Epoch: cur.Epoch}
				acc[k] = st
			}
			st.Requests += cur.Counters[name+".requests"] - prev.Counters[name+".requests"]
			st.BytesStored += cur.Counters[name+".bytes_stored"] - prev.Counters[name+".bytes_stored"]
			st.BytesServed += cur.Counters[name+".bytes_served"] - prev.Counters[name+".bytes_served"]
			st.RDMAIssued += cur.Counters[name+".rdma_issued"] - prev.Counters[name+".rdma_issued"]
			st.Span += sim.Duration(cur.At - prev.At)
		}
	}
	keys := make([]key, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].epoch != keys[j].epoch {
			return keys[i].epoch < keys[j].epoch
		}
		return keys[i].name < keys[j].name
	})
	out := make([]ServerStat, 0, len(keys))
	for _, k := range keys {
		out = append(out, *acc[k])
	}
	return out
}

// TopTable renders the fleet's busiest servers over the retained window
// as a deterministic aligned table — the "hpbdctl top" surface. Servers
// sort by requests descending (name ascending on ties) with per-epoch
// rows kept separate, so a migration shows up as the load moving between
// epoch rows.
func (m *Monitor) TopTable() string {
	rows := m.FleetRollup()
	var b strings.Builder
	span := sim.Duration(0)
	if n := m.ring.Len(); n >= 2 {
		span = sim.Duration(m.ring.At(n-1).At - m.ring.At(0).At)
	}
	fmt.Fprintf(&b, "fleet top (window %v, %d samples):\n", span, m.ring.Len())
	if len(rows) == 0 {
		fmt.Fprintf(&b, "  (no server activity sampled)\n")
		return b.String()
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Requests != rows[j].Requests {
			return rows[i].Requests > rows[j].Requests
		}
		if rows[i].Name != rows[j].Name {
			return rows[i].Name < rows[j].Name
		}
		return rows[i].Epoch < rows[j].Epoch
	})
	fmt.Fprintf(&b, "  %-8s %6s %9s %12s %12s %10s %10s\n",
		"server", "epoch", "reqs", "stored_B", "served_B", "rdma", "req/ms")
	for _, r := range rows {
		rate := 0.0
		if r.Span > 0 {
			rate = float64(r.Requests) / (float64(r.Span) / 1e6)
		}
		fmt.Fprintf(&b, "  %-8s %6d %9d %12d %12d %10d %10.2f\n",
			r.Name, r.Epoch, r.Requests, r.BytesStored, r.BytesServed, r.RDMAIssued, rate)
	}
	return b.String()
}

// Report renders the full health summary — sampler stats, SLO
// compliance, rule hits, the alert timeline and the fleet rollup — as
// one deterministic page. It is the body of "hpbdctl health".
func (m *Monitor) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health engine: %d samples every %v (ring %d, %d retained)\n",
		m.ring.Total(), m.cfg.SampleInterval, m.cfg.RingSize, m.ring.Len())

	fmt.Fprintf(&b, "slo compliance:\n")
	stats := m.SLOStats()
	if len(stats) == 0 {
		fmt.Fprintf(&b, "  (no objectives configured)\n")
	}
	for _, st := range stats {
		fmt.Fprintf(&b, "  %-14s %-38s %6.1f%% ok  worst burn %5.1fx  burns %d\n",
			st.SLO.Name, st.SLO.Objective(), st.Compliance*100, st.WorstBurn, st.Burns)
	}

	fmt.Fprintf(&b, "anomaly rules:\n")
	rules := m.RuleStats()
	if len(rules) == 0 {
		fmt.Fprintf(&b, "  (no rules configured)\n")
	}
	for _, st := range rules {
		status := "quiet"
		if st.Fired > 0 {
			status = fmt.Sprintf("FIRED x%d", st.Fired)
		}
		fmt.Fprintf(&b, "  %-24s %-10s %s\n", st.Rule.Name, status, st.Rule.Help)
	}

	b.WriteString(m.Timeline())
	b.WriteString(m.TopTable())
	return b.String()
}
