package health

import (
	"fmt"
	"io"
	"strings"

	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// Sample is one scrape of the whole registry at a virtual instant:
// cumulative counter values, gauge levels and histogram bucket snapshots.
// Deltas and windowed quantiles are derived by subtracting earlier
// samples, so the ring never loses information to pre-aggregation.
type Sample struct {
	At    sim.Time
	Epoch int64 // placement directory epoch at sample time (0: static fleet)

	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]telemetry.HistSnapshot
}

// sameTotals reports whether no metric moved between prev and s — the
// sampler's idle signal. A metric appearing or disappearing counts as
// movement. The engine's own health.* counters are excluded: sampling
// increments health.samples, so counting it as movement would keep the
// sampler awake (and the event queue alive) forever.
func (s *Sample) sameTotals(prev *Sample) bool {
	if len(s.Counters) != len(prev.Counters) || len(s.Gauges) != len(prev.Gauges) ||
		len(s.Hists) != len(prev.Hists) {
		return false
	}
	for k, v := range s.Counters {
		if strings.HasPrefix(k, "health.") {
			continue
		}
		if pv, ok := prev.Counters[k]; !ok || pv != v {
			return false
		}
	}
	for k, v := range s.Gauges {
		if pv, ok := prev.Gauges[k]; !ok || pv != v {
			return false
		}
	}
	for k, v := range s.Hists {
		pv, ok := prev.Hists[k]
		if !ok || pv.N != v.N || pv.Sum != v.Sum {
			return false
		}
	}
	return true
}

// Ring is a fixed-size ring of samples, oldest overwritten first.
type Ring struct {
	buf   []Sample
	next  int
	total uint64
}

// NewRing returns an empty ring holding up to n samples.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1
	}
	return &Ring{buf: make([]Sample, n)}
}

// Push appends a sample, overwriting the oldest once full.
func (r *Ring) Push(s Sample) {
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.total++
}

// Len returns how many samples the ring currently retains.
func (r *Ring) Len() int {
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns how many samples were ever pushed.
func (r *Ring) Total() uint64 { return r.total }

// At returns the i-th retained sample, oldest first (nil out of range).
func (r *Ring) At(i int) *Sample {
	n := r.Len()
	if i < 0 || i >= n {
		return nil
	}
	start := 0
	if r.total > uint64(len(r.buf)) {
		start = r.next
	}
	return &r.buf[(start+i)%len(r.buf)]
}

// Last returns the most recent sample (nil when empty).
func (r *Ring) Last() *Sample { return r.At(r.Len() - 1) }

// FromLast returns the sample k steps before the most recent one,
// clamped to the oldest retained sample (nil on an empty ring). It is
// the window-start lookup for burn rates and rule windows.
func (r *Ring) FromLast(k int) *Sample {
	n := r.Len()
	if n == 0 {
		return nil
	}
	i := n - 1 - k
	if i < 0 {
		i = 0
	}
	return r.At(i)
}

// WriteOpenMetricsPages exports the retained samples as a sequence of
// OpenMetrics pages: one exposition per sample, oldest first, each
// introduced by a "# page" comment carrying the sample's sim time and
// placement epoch and closed by the standard "# EOF" marker. It is what
// a Prometheus scrape of the fleet would have seen at each sample
// instant, replayed from the ring — counters as _total families, gauges
// with their _peak companions, histograms as _seconds _count/_sum pairs
// (per-bucket state is not retained in samples). Family names use the
// same charset mapping as the registry's live exposition, so the pages
// diff cleanly against it. Identical runs produce identical bytes.
func (r *Ring) WriteOpenMetricsPages(w io.Writer) error {
	var b strings.Builder
	for i := 0; i < r.Len(); i++ {
		s := r.At(i)
		fmt.Fprintf(&b, "# page %d t_us=%.3f epoch=%d\n", i, float64(s.At)/1e3, s.Epoch)
		for _, name := range sortedNames(s.Counters) {
			n := telemetry.MetricName(name)
			fmt.Fprintf(&b, "# TYPE %s counter\n", n)
			fmt.Fprintf(&b, "%s_total %d\n", n, s.Counters[name])
		}
		for _, name := range sortedNames(s.Gauges) {
			n := telemetry.MetricName(name)
			fmt.Fprintf(&b, "# TYPE %s gauge\n", n)
			fmt.Fprintf(&b, "%s %d\n", n, s.Gauges[name])
		}
		for _, name := range sortedNames(s.Hists) {
			h := s.Hists[name]
			n := telemetry.MetricName(name) + "_seconds"
			fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
			fmt.Fprintf(&b, "%s_count %d\n", n, h.N)
			fmt.Fprintf(&b, "%s_sum %.9f\n", n, float64(h.Sum)/1e9)
		}
		b.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV exports the retained samples as a deterministic time series:
// one row per metric per sample, oldest sample first, metrics in sorted
// name order within a sample. Counters and histogram counts carry the
// delta against the previous retained sample; histograms additionally
// carry the windowed (single-interval) p50/p99 in microseconds. The
// header names the columns; every run with the same seed and schedule
// produces identical bytes.
func (r *Ring) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_us,epoch,kind,name,value,delta,p50_us,p99_us"); err != nil {
		return err
	}
	for i := 0; i < r.Len(); i++ {
		s := r.At(i)
		prev := r.At(i - 1)
		t := float64(s.At) / 1e3
		for _, name := range sortedNames(s.Counters) {
			v := s.Counters[name]
			d := v
			if prev != nil {
				d = v - prev.Counters[name]
			}
			if _, err := fmt.Fprintf(w, "%.3f,%d,counter,%s,%d,%d,,\n", t, s.Epoch, name, v, d); err != nil {
				return err
			}
		}
		for _, name := range sortedNames(s.Gauges) {
			v := s.Gauges[name]
			d := v
			if prev != nil {
				d = v - prev.Gauges[name]
			}
			if _, err := fmt.Fprintf(w, "%.3f,%d,gauge,%s,%d,%d,,\n", t, s.Epoch, name, v, d); err != nil {
				return err
			}
		}
		for _, name := range sortedNames(s.Hists) {
			h := s.Hists[name]
			win := h
			if prev != nil {
				win = h.Sub(prev.Hists[name])
			}
			if _, err := fmt.Fprintf(w, "%.3f,%d,hist,%s,%d,%d,%.3f,%.3f\n",
				t, s.Epoch, name, h.N, win.N,
				float64(win.Quantile(0.50))/1e3, float64(win.Quantile(0.99))/1e3); err != nil {
				return err
			}
		}
	}
	return nil
}
