// Package health is the fleet health engine: an opt-in, deterministic
// monitoring layer over the telemetry registry. Where the registry and
// the critical-path analyzer answer "what happened by the end of the
// run?", this package answers the operator's question — "what is
// happening right now?" — with three continuous signals:
//
//   - a sim-time sampler that scrapes the whole registry every
//     SampleInterval into a fixed-size ring of snapshots (counters as
//     cumulative values + windowed deltas, gauges as levels, histograms
//     as windowed p50/p99), exportable as a deterministic time-series CSV;
//   - an SLO tracker evaluating declarative objectives per sample with
//     multi-window burn-rate alerting (the fast/slow-window scheme from
//     SRE practice, scaled to sim time), firing slo.<name>.burn trace
//     instants and a flight-recorder dump at the first breach;
//   - a rule engine of anomaly detectors — small pure functions over the
//     snapshot ring — covering credit starvation, RNR retry storms,
//     migration dirty-resend runaway, ODP fault thrash, mirror replica
//     divergence and staging-pool exhaustion.
//
// Everything runs inside the simulation: samples land at exact virtual
// instants, alert timestamps are sim times, and two runs with the same
// seed and fault schedule produce byte-identical sample rings and alert
// timelines. The sampler only READS the registry, so enabling health
// never perturbs workload timing; with health off (the default) no code
// in this package runs and every output surface is byte-identical to a
// build without it.
//
// Lifecycle: the sampler is a simulated process that must not keep the
// event queue alive after the workload drains, so it parks once
// IdleTicks consecutive samples observe no metric movement and is
// re-armed by Kick() — wired to block-layer submission by the cluster —
// when traffic resumes.
package health

import (
	"fmt"
	"sort"
	"strings"

	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

// Config tunes the health engine. The zero value selects the documented
// defaults; a nil *Config on the cluster side means "health off".
type Config struct {
	// SampleInterval is the sim time between registry scrapes
	// (default 200us).
	SampleInterval sim.Duration
	// RingSize bounds the snapshot ring (default 256 samples).
	RingSize int
	// IdleTicks is how many consecutive unchanged samples park the
	// sampler until the next Kick (default 2).
	IdleTicks int
	// SLOs are the service-level objectives to track (nil: DefaultSLOs).
	// An explicitly empty, non-nil slice disables SLO tracking.
	SLOs []SLO
	// Rules is the anomaly-detector catalogue (nil: DefaultRules).
	// An explicitly empty, non-nil slice disables the rule engine.
	Rules []Rule
}

func (c Config) withDefaults() Config {
	if c.SampleInterval <= 0 {
		c.SampleInterval = 200 * sim.Microsecond
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.IdleTicks <= 0 {
		c.IdleTicks = 2
	}
	if c.SLOs == nil {
		c.SLOs = DefaultSLOs()
	}
	if c.Rules == nil {
		c.Rules = DefaultRules()
	}
	return c
}

// Alert is one fired alert: an SLO burn or an anomaly-rule hit.
type Alert struct {
	At     sim.Time
	Kind   string // "slo" or "rule"
	Name   string // SLO or rule name
	Detail string
}

// Monitor owns the sampler process, the snapshot ring, the SLO tracker
// and the rule engine for one node. Obtain one with NewMonitor and start
// it with Start before env.Run. Like the registry it monitors, a Monitor
// is confined to its sim.Env's cooperatively-scheduled processes.
type Monitor struct {
	env *sim.Env
	reg *telemetry.Registry
	cfg Config

	ring   *Ring
	parked bool
	idle   int
	kickQ  *sim.WaitQueue

	slos   []*sloState
	rules  []*ruleState
	alerts []Alert

	samples  *telemetry.Counter
	alertCnt *telemetry.Counter
	burnCnt  *telemetry.Counter
}

// NewMonitor builds a health monitor over reg. Its own metrics
// (health.samples, health.alerts, health.slo_burns) register lazily here,
// so a node without a monitor keeps a byte-identical registry summary.
func NewMonitor(env *sim.Env, reg *telemetry.Registry, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		env:      env,
		reg:      reg,
		cfg:      cfg,
		ring:     NewRing(cfg.RingSize),
		parked:   true, // dormant until the first Kick: no traffic, no samples
		kickQ:    sim.NewWaitQueue(env),
		samples:  reg.Counter("health.samples"),
		alertCnt: reg.Counter("health.alerts"),
		burnCnt:  reg.Counter("health.slo_burns"),
	}
	for i := range cfg.SLOs {
		m.slos = append(m.slos, newSLOState(cfg.SLOs[i]))
	}
	for i := range cfg.Rules {
		m.rules = append(m.rules, &ruleState{rule: cfg.Rules[i]})
	}
	return m
}

// Config returns the monitor's effective (defaulted) configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Ring returns the snapshot ring.
func (m *Monitor) Ring() *Ring { return m.ring }

// Alerts returns every fired alert in firing order.
func (m *Monitor) Alerts() []Alert { return m.alerts }

// Start spawns the sampler process. Call after the node's registry is
// wired and before env.Run.
func (m *Monitor) Start() {
	m.env.Go("health-sampler", func(p *sim.Proc) {
		for {
			for m.parked {
				m.kickQ.Wait(p)
			}
			p.Sleep(m.cfg.SampleInterval)
			if m.sample(p.Now()) {
				m.idle = 0
			} else if m.idle++; m.idle >= m.cfg.IdleTicks {
				m.parked = true
			}
		}
	})
}

// Kick re-arms a parked sampler. The cluster wires it to block-layer
// submission so the engine wakes with traffic and lets the event queue
// drain when the run ends. Nil-safe and free when the sampler is awake.
func (m *Monitor) Kick() {
	if m == nil || !m.parked {
		return
	}
	m.parked = false
	m.idle = 0
	m.kickQ.WakeAll()
}

// sample takes one snapshot, pushes it into the ring and evaluates the
// SLO tracker and rule engine against the new window. It reports whether
// any metric moved since the previous sample (the sampler's idle signal).
func (m *Monitor) sample(now sim.Time) bool {
	s := Sample{
		At:       now,
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Hists:    make(map[string]telemetry.HistSnapshot),
	}
	m.reg.VisitCounters(func(name string, v int64) { s.Counters[name] = v })
	m.reg.VisitGauges(func(name string, v, _ int64) { s.Gauges[name] = v })
	m.reg.VisitHistograms(func(name string, h *telemetry.Histogram) {
		s.Hists[name] = h.Snapshot()
	})
	s.Epoch = s.Gauges["placement.epoch"]
	prev := m.ring.Last()
	changed := prev == nil || !s.sameTotals(prev)
	m.ring.Push(s)
	m.samples.Inc()
	m.evalSLOs(now)
	m.evalRules(now)
	return changed
}

// fire records one alert on every surface: the deterministic alert log,
// the health.alerts counter, and (when tracing is on) a trace instant on
// the "health" track.
func (m *Monitor) fire(at sim.Time, kind, name, detail string) {
	m.alerts = append(m.alerts, Alert{At: at, Kind: kind, Name: name, Detail: detail})
	m.alertCnt.Inc()
	if tr := m.reg.Tracer(); tr != nil {
		instant := "alert:" + name
		if kind == "slo" {
			instant = "slo." + name + ".burn"
		}
		tr.InstantArgs("health", instant, map[string]any{"detail": detail})
	}
}

// Timeline renders the fired alerts as a deterministic aligned table,
// oldest first.
func (m *Monitor) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "alert timeline (%d alerts):\n", len(m.alerts))
	if len(m.alerts) == 0 {
		fmt.Fprintf(&b, "  (none fired)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %12s  %-4s  %-24s  %s\n", "t_us", "kind", "name", "detail")
	for _, a := range m.alerts {
		fmt.Fprintf(&b, "  %12.3f  %-4s  %-24s  %s\n",
			float64(a.At)/1e3, a.Kind, a.Name, a.Detail)
	}
	return b.String()
}

// sortedNames returns the sorted keys of a string-keyed map (shared by
// the deterministic render paths).
func sortedNames[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
