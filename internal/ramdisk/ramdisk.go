// Package ramdisk provides the memory server's page store: a RAM-backed
// byte store with a file-style interface, as the paper's server uses a
// RamDisk exposed through the filesystem. Accesses charge the calibrated
// memcpy cost, which is the server-side copy the paper overlaps with RDMA.
package ramdisk

import (
	"errors"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
)

// ErrOutOfRange reports access beyond the store's end.
var ErrOutOfRange = errors.New("ramdisk: access out of range")

// RamDisk is a fixed-size in-memory store.
type RamDisk struct {
	mem netmodel.MemModel
	buf []byte
	op  sim.Duration
}

// New creates a RamDisk of size bytes.
func New(size int64, mem netmodel.MemModel) *RamDisk {
	return &RamDisk{mem: mem, buf: make([]byte, size)}
}

// SetOpOverhead adds a fixed per-operation cost. The paper's server
// reaches its RamDisk through a file-system interface, so every request
// pays a VFS traversal on top of the copy.
func (r *RamDisk) SetOpOverhead(d sim.Duration) { r.op = d }

// Size returns the store capacity in bytes.
func (r *RamDisk) Size() int64 { return int64(len(r.buf)) }

// ReadAt copies len(dst) bytes from offset off into dst, charging the
// calling process the memcpy cost.
func (r *RamDisk) ReadAt(p *sim.Proc, dst []byte, off int64) error {
	if off < 0 || off+int64(len(dst)) > int64(len(r.buf)) {
		return ErrOutOfRange
	}
	p.Sleep(r.op + r.mem.Memcpy(len(dst)))
	copy(dst, r.buf[off:])
	return nil
}

// WriteAt copies src into the store at off, charging the memcpy cost.
func (r *RamDisk) WriteAt(p *sim.Proc, src []byte, off int64) error {
	if off < 0 || off+int64(len(src)) > int64(len(r.buf)) {
		return ErrOutOfRange
	}
	p.Sleep(r.op + r.mem.Memcpy(len(src)))
	copy(r.buf[off:], src)
	return nil
}

// CopyCost returns the memcpy time for n bytes (used by callers that
// overlap copies with RDMA and account for the time themselves).
func (r *RamDisk) CopyCost(n int) sim.Duration { return r.mem.Memcpy(n) }

// Peek returns a copy of stored bytes without charging time (tests only).
func (r *RamDisk) Peek(off int64, n int) []byte {
	out := make([]byte, n)
	copy(out, r.buf[off:])
	return out
}
