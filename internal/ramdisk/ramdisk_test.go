package ramdisk

import (
	"bytes"
	"testing"

	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
)

func TestReadWriteRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	r := New(1<<20, netmodel.DefaultMem())
	pattern := []byte("page contents here")
	env.Go("io", func(p *sim.Proc) {
		if err := r.WriteAt(p, pattern, 4096); err != nil {
			t.Errorf("WriteAt: %v", err)
		}
		got := make([]byte, len(pattern))
		if err := r.ReadAt(p, got, 4096); err != nil {
			t.Errorf("ReadAt: %v", err)
		}
		if !bytes.Equal(got, pattern) {
			t.Errorf("got %q", got)
		}
	})
	env.Run()
}

func TestChargesMemcpyCost(t *testing.T) {
	env := sim.NewEnv()
	mem := netmodel.DefaultMem()
	r := New(1<<20, mem)
	var took sim.Duration
	env.Go("io", func(p *sim.Proc) {
		t0 := p.Now()
		r.WriteAt(p, make([]byte, 128*1024), 0)
		took = p.Now().Sub(t0)
	})
	env.Run()
	if want := mem.Memcpy(128 * 1024); took != want {
		t.Errorf("WriteAt took %v, want %v", took, want)
	}
}

func TestOutOfRange(t *testing.T) {
	env := sim.NewEnv()
	r := New(4096, netmodel.DefaultMem())
	env.Go("io", func(p *sim.Proc) {
		if err := r.WriteAt(p, make([]byte, 8192), 0); err != ErrOutOfRange {
			t.Errorf("oversize write err = %v", err)
		}
		if err := r.ReadAt(p, make([]byte, 16), -1); err != ErrOutOfRange {
			t.Errorf("negative offset err = %v", err)
		}
		if err := r.ReadAt(p, make([]byte, 16), 4090); err != ErrOutOfRange {
			t.Errorf("tail overrun err = %v", err)
		}
	})
	env.Run()
	if r.Size() != 4096 {
		t.Errorf("Size = %d", r.Size())
	}
}
