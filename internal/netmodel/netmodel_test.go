package netmodel

import (
	"testing"
	"testing/quick"

	"hpbd/internal/sim"
)

func TestMemcpyMonotone(t *testing.T) {
	m := DefaultMem()
	prev := sim.Duration(-1)
	for n := 0; n <= 1<<20; n += 4096 {
		d := m.Memcpy(n)
		if d <= prev {
			t.Fatalf("Memcpy(%d) = %v not > Memcpy(prev) = %v", n, d, prev)
		}
		prev = d
	}
}

func TestRegistrationDominatesCopyInSwapRange(t *testing.T) {
	// The paper's Fig. 3 argument: for request sizes 4K..127K, registering
	// on the fly costs more than copying into a pre-registered pool.
	m := DefaultMem()
	for n := 4096; n < 127*1024; n += 4096 {
		if m.Register(n) <= m.Memcpy(n) {
			t.Errorf("Register(%d)=%v <= Memcpy(%d)=%v; pool design unjustified",
				n, m.Register(n), n, m.Memcpy(n))
		}
	}
}

func TestCopyRegisterCrossover(t *testing.T) {
	m := DefaultMem()
	// Without reuse the crossover sits above the whole 4K-127K swap-request
	// range — the Fig. 3 case for the copy-into-pool design.
	if c := m.CopyRegisterCrossover(1); c <= Fig3CrossoverBytes {
		t.Errorf("crossover(1) = %d, want > %d: raw registration must lose across the swap range",
			c, Fig3CrossoverBytes)
	}
	// Modest MR reuse amortizes the registration cost below memcpy within
	// the 128K request bound — the case for the hybrid data path.
	if c := m.CopyRegisterCrossover(4); c >= 128*1024 {
		t.Errorf("crossover(4) = %d, want < 128K: reuse must pull the crossover into range", c)
	}
	// More reuse never raises the crossover.
	if c8, c4 := m.CopyRegisterCrossover(8), m.CopyRegisterCrossover(4); c8 > c4 {
		t.Errorf("crossover(8) = %d > crossover(4) = %d; not monotone in reuse", c8, c4)
	}
}

func TestRegisterCountsPages(t *testing.T) {
	m := DefaultMem()
	onePage := m.Register(1)
	if onePage != m.Register(PageSize) {
		t.Error("sub-page and one-page registrations should cost the same")
	}
	if m.Register(PageSize+1) <= onePage {
		t.Error("crossing a page boundary must add cost")
	}
}

func TestFigure1Ordering(t *testing.T) {
	// For every size in the paper's sweep, latency ordering must be
	// memcpy < RDMA < IPoIB < GigE.
	mem := DefaultMem()
	ib, ipoib, gige := IB4X(), IPoIB(), GigE()
	for n := 4; n <= 128*1024; n *= 2 {
		mc := mem.Memcpy(n)
		rd := ib.Latency(n, mem)
		ip := ipoib.Latency(n, mem)
		ge := gige.Latency(n, mem)
		if !(mc < rd && rd < ip && ip < ge) {
			t.Errorf("n=%d: memcpy=%v rdma=%v ipoib=%v gige=%v out of order",
				n, mc, rd, ip, ge)
		}
	}
}

func TestFigure1RDMAComparableToMemcpyAt128K(t *testing.T) {
	mem := DefaultMem()
	n := 128 * 1024
	ratio := float64(IB4X().Latency(n, mem)) / float64(mem.Memcpy(n))
	if ratio > 2.5 {
		t.Errorf("RDMA/memcpy at 128K = %.2f; paper shows them comparable (< ~2.5x)", ratio)
	}
}

func TestSegments(t *testing.T) {
	l := GigE()
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {1500, 1}, {1501, 2}, {3000, 2}, {128 * 1024, 88},
	}
	for _, c := range cases {
		if got := l.Segments(c.n); got != c.want {
			t.Errorf("Segments(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBandwidthOver(t *testing.T) {
	b := MBps(100)
	if d := b.Over(100 * 1e6); d != sim.Second {
		t.Errorf("100MB at 100MB/s = %v, want 1s", d)
	}
	if d := Bandwidth(0).Over(123); d != 0 {
		t.Errorf("zero bandwidth should cost 0, got %v", d)
	}
}

func TestQuickLatencyMonotoneInSize(t *testing.T) {
	mem := DefaultMem()
	links := []LinkModel{IB4X(), IPoIB(), GigE()}
	f := func(a, b uint16) bool {
		n1, n2 := int(a), int(b)
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		for _, l := range links {
			if l.Latency(n1, mem) > l.Latency(n2, mem) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveBWPipelines(t *testing.T) {
	mem := DefaultMem()
	// GigE is wire-limited: effective bandwidth equals the wire rate.
	ge := GigE()
	if eff := float64(ge.EffectiveBW(mem)); eff < float64(ge.BW)*0.95 {
		t.Errorf("GigE effective %f < wire %f; per-seg CPU should pipeline under the wire", eff, float64(ge.BW))
	}
	// IPoIB is CPU-limited: effective bandwidth sits well under the wire.
	ip := IPoIB()
	if eff := float64(ip.EffectiveBW(mem)); eff >= float64(ip.BW) {
		t.Errorf("IPoIB effective %f >= wire %f; should be host-limited", eff, float64(ip.BW))
	}
	// RDMA has no host copies: effective equals wire.
	ib := IB4X()
	if eff := float64(ib.EffectiveBW(mem)); eff < float64(ib.BW)*0.95 {
		t.Errorf("IB effective %f < wire %f", eff, float64(ib.BW))
	}
}

func TestLatencyIncludesPipelineFill(t *testing.T) {
	mem := DefaultMem()
	l := GigE()
	// Zero-byte latency is still positive (prop + per-message costs).
	if l.Latency(0, mem) <= 0 {
		t.Error("zero-byte latency should be positive")
	}
	if l.Latency(0, mem) >= l.Latency(1500*4, mem) {
		t.Error("latency must grow with size")
	}
}
