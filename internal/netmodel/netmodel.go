// Package netmodel holds the calibrated cost models that drive the whole
// simulation: memcpy, InfiniBand memory registration, and the wire/latency
// models for IB 4X RDMA, IPoIB, and Gigabit Ethernet.
//
// Parameters are calibrated against the paper's own microbenchmarks
// (CLUSTER'05, Figures 1 and 3) for the evaluation platform: dual Xeon
// 2.66 GHz, PCI-X 133, Mellanox MT23108 HCA, Linux 2.4. They are exported
// so experiments can run sensitivity sweeps, but the zero-value defaults
// returned by the constructors reproduce the paper.
package netmodel

import "hpbd/internal/sim"

// PageSize is the VM page size of the evaluation platform (IA-32).
const PageSize = 4096

// bw converts a bandwidth in MB/s to bytes per sim.Second.
// (1 MB = 1e6 bytes here; bandwidth figures, not memory sizes.)
type Bandwidth float64 // bytes per second

// MBps constructs a Bandwidth from megabytes per second.
func MBps(mb float64) Bandwidth { return Bandwidth(mb * 1e6) }

// Over returns the time to move n bytes at bandwidth b.
func (b Bandwidth) Over(n int) sim.Duration {
	if b <= 0 {
		return 0
	}
	return sim.Duration(float64(n) / float64(b) * float64(sim.Second))
}

// MemModel is the host memory system: copy and registration costs.
type MemModel struct {
	// CopyBase is the fixed overhead of a memcpy call.
	CopyBase sim.Duration
	// CopyBW is the sustained copy bandwidth.
	CopyBW Bandwidth
	// RegBase is the fixed cost of registering a memory region with the
	// HCA (kernel trap, pinning setup, HCA table update).
	RegBase sim.Duration
	// RegPerPage is the incremental cost per 4 KB page pinned.
	RegPerPage sim.Duration
	// DeregBase is the fixed cost of deregistration.
	DeregBase sim.Duration

	// ODPRegBase is the fixed cost of an on-demand-paging registration:
	// no pages are pinned and no HCA translation entries are populated up
	// front, so only the kernel trap and the MR bookkeeping remain (the
	// NP-RDMA observation: registration becomes ~free, first access pays).
	ODPRegBase sim.Duration
	// ODPDeregBase is the fixed cost of tearing an ODP region down
	// (nothing to unpin).
	ODPDeregBase sim.Duration
	// ODPFaultBase is the per-fault-event cost of faulting one
	// ODPWindowBytes window in on first access: the HCA's page-fault
	// doorbell, the kernel's ODP handler, and the translation-table
	// update for the window.
	ODPFaultBase sim.Duration
	// ODPFaultPerPage is the incremental cost per 4 KB page resolved
	// within a faulted window.
	ODPFaultPerPage sim.Duration
}

// DefaultMem returns the memory model calibrated to the paper's platform.
// memcpy of 128 KB lands near 90 us; registration starts near 95 us and
// stays above memcpy throughout the 4 K-127 K swap-request range (Fig. 3),
// which is the paper's argument for the copy-into-preregistered-pool design.
func DefaultMem() MemModel {
	return MemModel{
		CopyBase:   40 * sim.Nanosecond,
		CopyBW:     MBps(1450),
		RegBase:    95 * sim.Microsecond,
		RegPerPage: 1200 * sim.Nanosecond,
		DeregBase:  25 * sim.Microsecond,

		ODPRegBase:      3 * sim.Microsecond,
		ODPDeregBase:    2 * sim.Microsecond,
		ODPFaultBase:    18 * sim.Microsecond,
		ODPFaultPerPage: 450 * sim.Nanosecond,
	}
}

// Memcpy returns the time to copy n bytes.
func (m MemModel) Memcpy(n int) sim.Duration {
	return m.CopyBase + m.CopyBW.Over(n)
}

// Register returns the time to register an n-byte buffer.
func (m MemModel) Register(n int) sim.Duration {
	pages := (n + PageSize - 1) / PageSize
	if pages == 0 {
		pages = 1
	}
	return m.RegBase + sim.Duration(pages)*m.RegPerPage
}

// Deregister returns the time to deregister a region.
func (m MemModel) Deregister() sim.Duration { return m.DeregBase }

// Fig3CrossoverBytes is the request size at which the paper's Figure 3
// shows per-request registration starting to pay off against copying into
// the pre-registered pool: just past the 4 K-127 K swap-request range.
// It is the default threshold for the client's hybrid copy/register data
// path.
const Fig3CrossoverBytes = 127 * 1024

// CopyRegisterCrossover returns the smallest page-multiple transfer size
// at which registering the payload buffer — amortized over `reuse`
// transfers through an MR reuse cache — costs no more than copying it.
// With reuse = 1 this is the raw Figure 3 crossover (above the 128 KB
// request bound); modest reuse pulls it into the swap-request range,
// which is what makes the hybrid data path viable.
func (m MemModel) CopyRegisterCrossover(reuse int) int {
	if reuse < 1 {
		reuse = 1
	}
	const limit = 1 << 30
	for n := PageSize; n <= limit; n += PageSize {
		if m.Register(n)/sim.Duration(reuse) <= m.Memcpy(n) {
			return n
		}
	}
	return limit
}

// ODPWindowBytes is the granularity of on-demand-paging faults: a first
// touch inside a window resolves the whole window, so an N-byte transfer
// through a cold ODP region takes ceil(N/ODPWindowBytes) faults.
const ODPWindowBytes = 64 * 1024

// ODPWindows returns the number of fault windows n bytes span when
// touched from a window boundary.
func ODPWindows(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + ODPWindowBytes - 1) / ODPWindowBytes
}

// ODPRegister returns the time to create an on-demand-paging region
// (size-independent: nothing is pinned).
func (m MemModel) ODPRegister() sim.Duration { return m.ODPRegBase }

// ODPDeregister returns the time to destroy an on-demand-paging region.
func (m MemModel) ODPDeregister() sim.Duration { return m.ODPDeregBase }

// ODPFault returns the time to service first-touch faults covering
// `windows` fault windows and `pages` 4 KB pages in total.
func (m MemModel) ODPFault(windows, pages int) sim.Duration {
	if windows <= 0 {
		return 0
	}
	return sim.Duration(windows)*m.ODPFaultBase + sim.Duration(pages)*m.ODPFaultPerPage
}

// odpFirstTouch is the cost of registering an n-byte ODP region and
// faulting all of it in once.
func (m MemModel) odpFirstTouch(n int) sim.Duration {
	pages := (n + PageSize - 1) / PageSize
	return m.ODPRegister() + m.ODPFault(ODPWindows(n), pages)
}

// ODPRegisterCrossover is the on-demand-paging analog of
// CopyRegisterCrossover: the smallest page-multiple transfer size at
// which an ODP registration plus a full first-touch fault — amortized
// over `reuse` transfers through an MR reuse cache — costs no more than
// copying the payload. Because nothing is pinned, the cold crossover sits
// far below the pinned Figure 3 one, which is what lets the adaptive
// controller push the hybrid threshold down into the swap-request range.
func (m MemModel) ODPRegisterCrossover(reuse int) int {
	if reuse < 1 {
		reuse = 1
	}
	const limit = 1 << 30
	for n := PageSize; n <= limit; n += PageSize {
		if m.odpFirstTouch(n)/sim.Duration(reuse) <= m.Memcpy(n) {
			return n
		}
	}
	return limit
}

// LinkModel describes a network path at message granularity: a one-way
// propagation/launch latency, a serialization bandwidth, and per-message
// and per-segment host CPU costs (the TCP/IP stack burden for IP networks,
// the WQE processing cost for verbs).
type LinkModel struct {
	Name string
	// Prop is the one-way zero-byte latency (NIC + switch + wire).
	Prop sim.Duration
	// BW is the effective serialization bandwidth.
	BW Bandwidth
	// MTU is the segment size for per-segment costs (0 = no segmentation).
	MTU int
	// PerMsgCPU is host processing charged once per message on each side.
	PerMsgCPU sim.Duration
	// PerSegCPU is host processing charged per MTU segment on each side
	// (interrupts, checksums, skb handling for the IP paths).
	PerSegCPU sim.Duration
	// CopyAtHost indicates the stack copies data between user/kernel
	// buffers on each side (true for the TCP paths, false for RDMA).
	CopyAtHost bool
}

// Segments returns the number of MTU segments n bytes occupy.
func (l LinkModel) Segments(n int) int {
	if l.MTU <= 0 || n == 0 {
		if n == 0 {
			return 1
		}
		return 1
	}
	return (n + l.MTU - 1) / l.MTU
}

// HostCPU returns the per-side host processing time for an n-byte message
// if it ran with no overlap against the wire (the per-segment work plus
// any kernel/user copy).
func (l LinkModel) HostCPU(n int, mem MemModel) sim.Duration {
	d := l.PerMsgCPU + sim.Duration(l.Segments(n))*l.PerSegCPU
	if l.CopyAtHost {
		d += mem.Memcpy(n)
	}
	return d
}

// SegTime returns the host processing time for one MTU segment.
func (l LinkModel) SegTime(mem MemModel) sim.Duration {
	d := l.PerSegCPU
	if l.CopyAtHost {
		d += mem.Memcpy(l.MTU)
	}
	return d
}

// EffectiveBW returns the streaming bandwidth after accounting for
// per-segment host processing, which pipelines with transmission: the
// stream moves at the slower of the wire and the per-segment CPU rate.
func (l LinkModel) EffectiveBW(mem MemModel) Bandwidth {
	if l.MTU <= 0 {
		return l.BW
	}
	wirePerSeg := l.BW.Over(l.MTU)
	cpuPerSeg := l.SegTime(mem)
	slower := wirePerSeg
	if cpuPerSeg > slower {
		slower = cpuPerSeg
	}
	if slower <= 0 {
		return l.BW
	}
	return Bandwidth(float64(l.MTU) / (float64(slower) / float64(sim.Second)))
}

// Latency returns the end-to-end one-way latency for an n-byte message:
// propagation, per-message host costs on both sides, the pipelined
// streaming time, and one segment's processing to fill the pipeline.
// This is the quantity the paper's Figure 1 plots.
func (l LinkModel) Latency(n int, mem MemModel) sim.Duration {
	return l.Prop + 2*l.PerMsgCPU + l.EffectiveBW(mem).Over(n) + l.SegTime(mem)
}

// IB4X returns the native InfiniBand 4X RC model (RDMA path). The 5 us
// small-message latency and ~840 MB/s large-message bandwidth match the
// MT23108/PCI-X generation; host cost per WQE is small and there are no
// host-side data copies (zero-copy RDMA).
func IB4X() LinkModel {
	return LinkModel{
		Name:      "ib-rdma",
		Prop:      4 * sim.Microsecond,
		BW:        MBps(840),
		MTU:       2048,
		PerMsgCPU: 500 * sim.Nanosecond,
		PerSegCPU: 0, // segmentation handled by the HCA
	}
}

// IPoIB returns the IP-emulation-over-InfiniBand model: same fabric, but
// every message pays the TCP/IP stack (per-segment processing and a
// kernel/user copy on each side), which caps effective bandwidth near
// 220 MB/s on this platform.
func IPoIB() LinkModel {
	return LinkModel{
		Name:       "ipoib",
		Prop:       18 * sim.Microsecond,
		BW:         MBps(420),
		MTU:        2044,
		PerMsgCPU:  9 * sim.Microsecond,
		PerSegCPU:  10500 * sim.Nanosecond,
		CopyAtHost: true,
	}
}

// GigE returns the Gigabit Ethernet TCP model (~112 MB/s wire rate,
// 1500-byte MTU, higher interrupt/stack cost per segment).
func GigE() LinkModel {
	return LinkModel{
		Name:       "gige",
		Prop:       30 * sim.Microsecond,
		BW:         MBps(112),
		MTU:        1500,
		PerMsgCPU:  12 * sim.Microsecond,
		PerSegCPU:  2200 * sim.Nanosecond,
		CopyAtHost: true,
	}
}

// HostModel bundles OS-path costs shared across the simulation.
type HostModel struct {
	// PageFaultCPU is the kernel cost to take and service a page fault
	// (trap, VM lookup, page table update), excluding any I/O.
	PageFaultCPU sim.Duration
	// BlockPerRequest is the block layer's per-request overhead
	// (make_request, queueing, completion).
	BlockPerRequest sim.Duration
	// BlockPerBH is the per-buffer-head cost (submission bookkeeping and
	// end_buffer_io completion handling for each merged 4 KB unit).
	BlockPerBH sim.Duration
	// Wakeup is the cost/latency of waking a sleeping thread.
	Wakeup sim.Duration
	// ReclaimPerPage is kswapd's CPU cost to unmap and queue one page.
	ReclaimPerPage sim.Duration
	// FillPerPage is the application-level cost charged by workloads per
	// page of fresh data touched (cache misses on first touch).
	FillPerPage sim.Duration
}

// DefaultHost returns host-path costs for the dual-Xeon 2.66 GHz platform.
func DefaultHost() HostModel {
	return HostModel{
		PageFaultCPU:    1800 * sim.Nanosecond,
		BlockPerRequest: 2 * sim.Microsecond,
		BlockPerBH:      4 * sim.Microsecond,
		Wakeup:          1500 * sim.Nanosecond,
		ReclaimPerPage:  900 * sim.Nanosecond,
		FillPerPage:     21 * sim.Microsecond,
	}
}
