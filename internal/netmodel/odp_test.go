package netmodel

import (
	"testing"

	"hpbd/internal/sim"
)

func TestODPWindows(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {-5, 0}, {1, 1}, {ODPWindowBytes, 1},
		{ODPWindowBytes + 1, 2}, {128 * 1024, 2}, {512 * 1024, 8},
	}
	for _, c := range cases {
		if got := ODPWindows(c.n); got != c.want {
			t.Errorf("ODPWindows(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestODPFaultArithmetic(t *testing.T) {
	m := DefaultMem()
	if m.ODPFault(0, 0) != 0 {
		t.Error("zero windows must cost nothing")
	}
	want := 2*m.ODPFaultBase + 32*m.ODPFaultPerPage
	if got := m.ODPFault(2, 32); got != want {
		t.Errorf("ODPFault(2, 32) = %v, want %v", got, want)
	}
	// Registration and deregistration are size-independent constants —
	// that is the whole point of on-demand paging.
	if m.ODPRegister() != m.ODPRegBase || m.ODPDeregister() != m.ODPDeregBase {
		t.Error("ODP register/deregister must be the flat base costs")
	}
}

// The calibration contract: registering a cold ODP region and faulting it
// in must undercut a pinned registration of the same size, and a warm
// region (no faults) must be near-free. Otherwise ODP mode would never be
// worth switching on.
func TestODPColdBeatsPinnedRegistration(t *testing.T) {
	m := DefaultMem()
	for _, n := range []int{64 * 1024, 128 * 1024, 512 * 1024} {
		cold := m.ODPRegister() + m.ODPFault(ODPWindows(n), (n+PageSize-1)/PageSize)
		if pinned := m.Register(n); cold >= pinned {
			t.Errorf("cold ODP %d bytes = %v, want < pinned registration %v", n, cold, pinned)
		}
	}
	if warm := m.ODPRegister(); warm > 5*sim.Microsecond {
		t.Errorf("warm ODP registration = %v; must be microseconds, not a pin-down", warm)
	}
}

func TestODPRegisterCrossover(t *testing.T) {
	m := DefaultMem()
	// Even with zero reuse the ODP crossover must sit below the pinned
	// one: the amortized cost it compares against memcpy is strictly
	// cheaper at every size.
	if odp, pinned := m.ODPRegisterCrossover(1), m.CopyRegisterCrossover(1); odp >= pinned {
		t.Errorf("ODP crossover(1) = %d, want < pinned crossover %d", odp, pinned)
	}
	// More reuse amortizes the fault cost further: monotone non-increasing.
	prev := m.ODPRegisterCrossover(1)
	for reuse := 2; reuse <= 16; reuse *= 2 {
		c := m.ODPRegisterCrossover(reuse)
		if c > prev {
			t.Errorf("ODP crossover(%d) = %d > crossover at less reuse %d", reuse, c, prev)
		}
		prev = c
	}
	// The result is a page multiple (the threshold consumer aligns to
	// pages; the model should hand it one already aligned).
	if c := m.ODPRegisterCrossover(4); c%PageSize != 0 {
		t.Errorf("ODP crossover(4) = %d, not page-aligned", c)
	}
}
