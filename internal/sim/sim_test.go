package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	var woke Time
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		woke = p.Now()
	})
	end := env.Run()
	if woke != Time(5*Microsecond) {
		t.Errorf("woke at %v, want 5us", woke)
	}
	if end != woke {
		t.Errorf("Run returned %v, want %v", end, woke)
	}
}

func TestEventOrderingFIFOAtSameInstant(t *testing.T) {
	env := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Microsecond)
			order = append(order, i)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var log []string
		ch := NewChan[int](env, 0)
		for i := 0; i < 4; i++ {
			i := i
			env.Go(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Duration(env.Rand.Intn(100)) * Microsecond)
					ch.Send(p, i*10+j)
				}
			})
		}
		env.Go("cons", func(p *Proc) {
			for k := 0; k < 20; k++ {
				v, _ := ch.Recv(p)
				log = append(log, fmt.Sprintf("%v:%d", p.Now(), v))
			}
		})
		env.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("got %d and %d events, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestAfterCallback(t *testing.T) {
	env := NewEnv()
	var at Time
	env.After(3*Millisecond, func() { at = env.Now() })
	env.Run()
	if at != Time(3*Millisecond) {
		t.Errorf("callback at %v, want 3ms", at)
	}
}

func TestRunUntil(t *testing.T) {
	env := NewEnv()
	count := 0
	env.Go("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Millisecond)
			count++
		}
	})
	env.RunUntil(Time(10*Millisecond) + 1)
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	env.Close()
}

func TestWaitQueueFIFO(t *testing.T) {
	env := NewEnv()
	q := NewWaitQueue(env)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Duration(i) * Microsecond) // enforce arrival order
			q.Wait(p)
			order = append(order, i)
		})
	}
	env.Go("waker", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		for i := 0; i < 5; i++ {
			q.WakeOne()
			p.Yield()
		}
	})
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order %v, want FIFO", order)
		}
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	env := NewEnv()
	q := NewWaitQueue(env)
	var woken bool
	var at Time
	env.Go("w", func(p *Proc) {
		woken = q.WaitTimeout(p, 50*Microsecond)
		at = p.Now()
	})
	env.Run()
	if woken {
		t.Error("WaitTimeout reported woken, want timeout")
	}
	if at != Time(50*Microsecond) {
		t.Errorf("timed out at %v, want 50us", at)
	}
	if q.Len() != 0 {
		t.Errorf("queue still holds %d waiters after timeout", q.Len())
	}
}

func TestWaitTimeoutWoken(t *testing.T) {
	env := NewEnv()
	q := NewWaitQueue(env)
	var woken bool
	var at Time
	env.Go("w", func(p *Proc) {
		woken = q.WaitTimeout(p, 50*Microsecond)
		at = p.Now()
	})
	env.Go("waker", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		q.WakeOne()
	})
	env.Run()
	if !woken {
		t.Error("WaitTimeout reported timeout, want woken")
	}
	if at != Time(10*Microsecond) {
		t.Errorf("woke at %v, want 10us", at)
	}
}

func TestStaleTimerDoesNotRewake(t *testing.T) {
	// After an early wake-up, the abandoned timeout event must not disturb
	// the process's next park.
	env := NewEnv()
	q := NewWaitQueue(env)
	var secondWake Time
	env.Go("w", func(p *Proc) {
		q.WaitTimeout(p, 100*Microsecond) // woken at 10us below
		p.Sleep(Second)                   // stale timer at 100us must not cut this short
		secondWake = p.Now()
	})
	env.Go("waker", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		q.WakeOne()
	})
	env.Run()
	want := Time(10*Microsecond + Second)
	if secondWake != want {
		t.Errorf("second wake at %v, want %v", secondWake, want)
	}
}

func TestChanBlockingAndOrder(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 2)
	var got []int
	var sendDone Time
	env.Go("sender", func(p *Proc) {
		for i := 0; i < 4; i++ {
			ch.Send(p, i) // third send blocks until receiver drains
		}
		sendDone = p.Now()
	})
	env.Go("recv", func(p *Proc) {
		p.Sleep(7 * Microsecond)
		for i := 0; i < 4; i++ {
			v, ok := ch.Recv(p)
			if !ok {
				t.Error("unexpected closed chan")
			}
			got = append(got, v)
		}
	})
	env.Run()
	if sendDone != Time(7*Microsecond) {
		t.Errorf("sender finished at %v, want 7us (blocked on full buffer)", sendDone)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("recv order %v, want ascending", got)
		}
	}
}

func TestChanRecvTimeout(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 0)
	var ok1, ok2 bool
	env.Go("r", func(p *Proc) {
		_, ok1 = ch.RecvTimeout(p, 10*Microsecond) // nothing arrives: timeout
		v, ok := ch.RecvTimeout(p, 100*Microsecond)
		ok2 = ok && v == 42
	})
	env.Go("s", func(p *Proc) {
		p.Sleep(30 * Microsecond)
		ch.Send(p, 42)
	})
	env.Run()
	if ok1 {
		t.Error("first RecvTimeout should have timed out")
	}
	if !ok2 {
		t.Error("second RecvTimeout should have received 42")
	}
}

func TestChanClose(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 0)
	var vals []int
	var closedOK bool
	env.Go("r", func(p *Proc) {
		for {
			v, ok := ch.Recv(p)
			if !ok {
				closedOK = true
				return
			}
			vals = append(vals, v)
		}
	})
	env.Go("s", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		p.Sleep(Microsecond)
		ch.Close()
	})
	env.Run()
	if !closedOK || len(vals) != 2 {
		t.Errorf("vals=%v closedOK=%v", vals, closedOK)
	}
}

func TestSemaphore(t *testing.T) {
	env := NewEnv()
	s := NewSemaphore(env, 2)
	var maxInFlight, inFlight int
	for i := 0; i < 6; i++ {
		env.Go(fmt.Sprintf("u%d", i), func(p *Proc) {
			s.Acquire(p, 1)
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			p.Sleep(10 * Microsecond)
			inFlight--
			s.Release(1)
		})
	}
	env.Run()
	if maxInFlight != 2 {
		t.Errorf("max in flight = %d, want 2", maxInFlight)
	}
	if s.Available() != 2 {
		t.Errorf("final permits = %d, want 2", s.Available())
	}
}

func TestMutexExcludes(t *testing.T) {
	env := NewEnv()
	m := NewMutex(env)
	var inside bool
	var violations int
	for i := 0; i < 4; i++ {
		env.Go(fmt.Sprintf("m%d", i), func(p *Proc) {
			m.Lock(p)
			if inside {
				violations++
			}
			inside = true
			p.Sleep(5 * Microsecond)
			inside = false
			m.Unlock()
		})
	}
	env.Run()
	if violations != 0 {
		t.Errorf("%d mutual exclusion violations", violations)
	}
}

func TestEventBroadcast(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	woke := 0
	for i := 0; i < 3; i++ {
		env.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			ev.Wait(p)
			woke++
		})
	}
	env.Go("late", func(p *Proc) {
		p.Sleep(20 * Microsecond)
		ev.Wait(p) // already triggered: returns immediately
		woke++
	})
	env.After(10*Microsecond, ev.Trigger)
	env.Run()
	if woke != 4 {
		t.Errorf("woke = %d, want 4", woke)
	}
}

func TestCloseKillsParked(t *testing.T) {
	env := NewEnv()
	q := NewWaitQueue(env)
	started := 0
	env.Go("stuck", func(p *Proc) {
		started++
		q.Wait(p) // never woken
		t.Error("stuck process resumed unexpectedly")
	})
	env.Run()
	if env.Parked() != 1 {
		t.Fatalf("parked = %d, want 1", env.Parked())
	}
	env.Close()
	if env.Parked() != 0 {
		t.Errorf("parked after Close = %d, want 0", env.Parked())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{25 * Microsecond, "25.00us"},
		{3 * Millisecond, "3.000ms"},
		{12 * Second, "12.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

// Property: for any set of sleep durations, processes complete in
// non-decreasing time order equal to their duration, and the clock ends at
// the max.
func TestQuickSleepOrdering(t *testing.T) {
	f := func(ds []uint16) bool {
		if len(ds) == 0 {
			return true
		}
		env := NewEnv()
		type rec struct {
			idx int
			at  Time
		}
		var recs []rec
		var max Duration
		for i, d16 := range ds {
			d := Duration(d16) * Nanosecond
			if d > max {
				max = d
			}
			i := i
			env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				recs = append(recs, rec{i, p.Now()})
			})
		}
		end := env.Run()
		if end != Time(max) {
			return false
		}
		for _, r := range recs {
			if r.at != Time(Duration(ds[r.idx])*Nanosecond) {
				return false
			}
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].at < recs[i-1].at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a bounded channel never holds more than its capacity and
// preserves FIFO order for any interleaving of producer sleeps.
func TestQuickChanInvariants(t *testing.T) {
	f := func(delays []uint8, capacity uint8) bool {
		capy := int(capacity%8) + 1
		env := NewEnv()
		ch := NewChan[int](env, capy)
		n := len(delays)
		var got []int
		violated := false
		env.Go("prod", func(p *Proc) {
			for i, d := range delays {
				p.Sleep(Duration(d) * Nanosecond)
				ch.Send(p, i)
				if ch.Len() > capy {
					violated = true
				}
			}
		})
		env.Go("cons", func(p *Proc) {
			for i := 0; i < n; i++ {
				v, ok := ch.Recv(p)
				if !ok {
					violated = true
					return
				}
				got = append(got, v)
			}
		})
		env.Run()
		if violated || len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
