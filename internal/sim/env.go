package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// event is a scheduled occurrence: either the resumption of a parked process
// or a bare callback executed in scheduler context.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	p   *Proc  // non-nil: resume this process
	fn  func() // non-nil: run this callback inline
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Env is a simulation environment: a virtual clock, an event queue, and the
// set of live processes. An Env is not safe for concurrent use from real
// goroutines other than its own scheduled processes.
type Env struct {
	now      Time
	seq      uint64
	nextProc uint64
	events   eventHeap
	yield    chan struct{} // handshake: running proc -> scheduler
	procs    map[*Proc]struct{}
	closed   bool

	// Rand is a deterministic source for simulations that need randomness.
	Rand *rand.Rand
}

// NewEnv returns an empty environment with a deterministic random source.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
		Rand:  rand.New(rand.NewSource(1)),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

func (e *Env) schedule(at Time, p *Proc, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, p: p, fn: fn}
	if p != nil {
		p.wake = ev
	}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run in scheduler context after delay d.
// fn must not block; use Go for blocking work.
func (e *Env) After(d Duration, fn func()) {
	e.schedule(e.now.Add(d), nil, fn)
}

// Go starts a new simulated process running fn. The process begins at the
// current virtual time, after the caller next yields to the scheduler.
// The name appears in diagnostics.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	e.nextProc++
	p := &Proc{env: e, id: e.nextProc, name: name, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	e.schedule(e.now, p, nil)
	go p.run(fn)
	return p
}

// run is the scheduler inner loop body: dispatch one event.
func (e *Env) dispatch(ev *event) {
	e.now = ev.at
	if ev.p != nil {
		if ev.p.done || ev.cancelled() {
			return
		}
		ev.p.wake = nil
		ev.p.resume <- struct{}{}
		<-e.yield
		return
	}
	ev.fn()
}

func (ev *event) cancelled() bool { return ev.p != nil && ev.p.wake != ev }

// Run executes events until the queue drains or until limit (if > 0) is
// reached. It returns the final virtual time. Processes still parked on
// queues when Run returns remain parked; use Close to release them.
func (e *Env) Run() Time { return e.RunUntil(-1) }

// RunUntil executes events with timestamps <= limit (limit < 0 means no
// bound) and returns the virtual time of the last dispatched event.
func (e *Env) RunUntil(limit Time) Time {
	for len(e.events) > 0 {
		if limit >= 0 && e.events[0].at > limit {
			e.now = limit
			break
		}
		ev := heap.Pop(&e.events).(*event)
		e.dispatch(ev)
	}
	return e.now
}

// Idle reports whether no events remain.
func (e *Env) Idle() bool { return len(e.events) == 0 }

// Parked returns the number of live processes currently blocked.
func (e *Env) Parked() int {
	n := 0
	for p := range e.procs {
		if !p.done {
			n++
		}
	}
	return n
}

// Close terminates every parked process by unwinding it with a kill panic
// that the process wrapper recovers. After Close the environment must not
// be used further. It is safe to call Close on an already-closed Env.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	// Kill in spawn order: unwinding runs deferred code, which may emit
	// telemetry, so the teardown sequence must not inherit map order.
	live := make([]*Proc, 0, len(e.procs))
	for p := range e.procs {
		if !p.done {
			live = append(live, p)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	for _, p := range live {
		if p.done {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-e.yield
	}
}

// String describes the environment state for diagnostics.
func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now=%v events=%d procs=%d}", e.now, len(e.events), len(e.procs))
}
