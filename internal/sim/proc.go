package sim

import "fmt"

// killedError is the panic value used to unwind processes on Env.Close.
type killedError struct{ name string }

func (k killedError) Error() string { return "sim: process " + k.name + " killed" }

// Proc is a simulated process. A Proc's function runs on its own goroutine,
// but the kernel guarantees that at most one process executes at a time and
// that all blocking primitives return at deterministic virtual times.
type Proc struct {
	env    *Env
	id     uint64 // spawn sequence number: a deterministic identity for ordering
	name   string
	resume chan struct{}
	wake   *event // pending scheduled resume, if any (for cancellation)
	done   bool
	killed bool
}

// ID returns the process's spawn sequence number, unique within its Env.
func (p *Proc) ID() uint64 { return p.id }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the diagnostic name given at creation.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

func (p *Proc) run(fn func(*Proc)) {
	// Wait for the scheduler to start us.
	<-p.resume
	defer func() {
		p.done = true
		delete(p.env.procs, p)
		if r := recover(); r != nil {
			if _, ok := r.(killedError); ok {
				p.env.yield <- struct{}{}
				return
			}
			// Re-panicking here would crash the whole program from a
			// detached goroutine with a confusing stack; annotate instead.
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
		}
		p.env.yield <- struct{}{}
	}()
	fn(p)
}

// park blocks the process until some other party schedules its resumption.
// The caller must have arranged a wake-up (a scheduled event or membership
// in a wait queue) before calling park.
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedError{p.name})
	}
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		// Yield: reschedule at the current instant, after already-queued
		// events at this time.
		p.env.schedule(p.env.now, p, nil)
		p.park()
		return
	}
	p.env.schedule(p.env.now.Add(d), p, nil)
	p.park()
}

// Yield lets any other runnable process scheduled for the current instant
// run before continuing.
func (p *Proc) Yield() { p.Sleep(0) }
