package sim

// WaitQueue is a FIFO queue of parked processes, the building block for all
// higher-level blocking primitives. Wakers schedule the resumed process at
// the current virtual instant; as with condition variables, woken waiters
// must re-check their predicate.
type WaitQueue struct {
	env     *Env
	waiters []*Proc
}

// NewWaitQueue returns an empty wait queue bound to env.
func NewWaitQueue(env *Env) *WaitQueue { return &WaitQueue{env: env} }

// Len returns the number of parked processes.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait parks p until a waker releases it.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.park()
}

// WaitTimeout parks p until woken or until d elapses. It reports whether
// the process was woken (false means the timeout fired).
func (q *WaitQueue) WaitTimeout(p *Proc, d Duration) (woken bool) {
	q.waiters = append(q.waiters, p)
	q.env.schedule(q.env.now.Add(d), p, nil)
	p.park()
	// If we are still queued, the timer fired; withdraw.
	for i, w := range q.waiters {
		if w == p {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return false
		}
	}
	return true
}

// WakeOne resumes the longest-waiting process, if any, and reports whether
// one was woken.
func (q *WaitQueue) WakeOne() bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	q.waiters = q.waiters[1:]
	q.env.schedule(q.env.now, p, nil)
	return true
}

// WakeAll resumes every parked process.
func (q *WaitQueue) WakeAll() {
	for _, p := range q.waiters {
		q.env.schedule(q.env.now, p, nil)
	}
	q.waiters = q.waiters[:0]
}

// Event is a one-shot broadcast: processes wait until it is triggered;
// waiting on an already-triggered event returns immediately.
type Event struct {
	q         *WaitQueue
	triggered bool
}

// NewEvent returns an untriggered event.
func NewEvent(env *Env) *Event { return &Event{q: NewWaitQueue(env)} }

// Triggered reports whether Trigger has been called.
func (ev *Event) Triggered() bool { return ev.triggered }

// Wait parks p until the event triggers.
func (ev *Event) Wait(p *Proc) {
	for !ev.triggered {
		ev.q.Wait(p)
	}
}

// Trigger fires the event, waking all waiters. Triggering twice is a no-op.
func (ev *Event) Trigger() {
	if ev.triggered {
		return
	}
	ev.triggered = true
	ev.q.WakeAll()
}

// Semaphore is a counting semaphore in virtual time.
type Semaphore struct {
	count int
	q     *WaitQueue
}

// NewSemaphore returns a semaphore holding n permits.
func NewSemaphore(env *Env, n int) *Semaphore {
	return &Semaphore{count: n, q: NewWaitQueue(env)}
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.count }

// Acquire takes n permits, parking until they are available.
func (s *Semaphore) Acquire(p *Proc, n int) {
	for s.count < n {
		s.q.Wait(p)
	}
	s.count -= n
}

// TryAcquire takes n permits without blocking and reports success.
func (s *Semaphore) TryAcquire(n int) bool {
	if s.count < n {
		return false
	}
	s.count -= n
	return true
}

// Release returns n permits and wakes all waiters to re-check.
func (s *Semaphore) Release(n int) {
	s.count += n
	s.q.WakeAll()
}

// Mutex is a simple blocking lock in virtual time. The simulation kernel is
// cooperative, so a Mutex is only needed when a process may block while a
// critical section must stay closed to others.
type Mutex struct {
	locked bool
	q      *WaitQueue
}

// NewMutex returns an unlocked mutex.
func NewMutex(env *Env) *Mutex { return &Mutex{q: NewWaitQueue(env)} }

// Lock acquires the mutex, parking while it is held elsewhere.
func (m *Mutex) Lock(p *Proc) {
	for m.locked {
		m.q.Wait(p)
	}
	m.locked = true
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	m.locked = false
	m.q.WakeOne()
}
