// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel runs simulated processes (Proc) under a cooperative scheduler:
// exactly one process executes at any instant, and control returns to the
// scheduler whenever a process blocks (Sleep, Wait, channel operations).
// Events scheduled for the same virtual time fire in scheduling order, so a
// simulation is exactly reproducible run-to-run.
//
// All other substrates in this repository — the InfiniBand fabric model, the
// TCP/IP stack model, the virtual memory system, block devices, and the HPBD
// client/server — are built as processes on this kernel.
package sim

import "fmt"

// Time is an absolute virtual time in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d < 2*Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < 2*Millisecond:
		return fmt.Sprintf("%.2fus", d.Micros())
	case d < 10*Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

func (t Time) String() string { return Duration(t).String() }
