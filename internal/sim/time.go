// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel runs simulated processes (Proc) under a cooperative scheduler:
// exactly one process executes at any instant, and control returns to the
// scheduler whenever a process blocks (Sleep, Wait, channel operations).
// Events scheduled for the same virtual time fire in scheduling order, so a
// simulation is exactly reproducible run-to-run.
//
// All other substrates in this repository — the InfiniBand fabric model, the
// TCP/IP stack model, the virtual memory system, block devices, and the HPBD
// client/server — are built as processes on this kernel.
package sim

import "fmt"

// Time is an absolute virtual time in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d < 2*Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < 2*Millisecond:
		return fmt.Sprintf("%.2fus", d.Micros())
	case d < 10*Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

func (t Time) String() string { return Duration(t).String() }

// ParseDuration parses a decimal number with a unit suffix ("ns", "us",
// "ms", "s") into a Duration, e.g. "500us", "1.5ms", "2s". It is the
// inverse of the formats String produces and exists so fault schedules
// and CLI flags can express sim-time without importing package time.
func ParseDuration(s string) (Duration, error) {
	var unit Duration
	var num string
	switch {
	case len(s) > 2 && s[len(s)-2:] == "ns":
		unit, num = Nanosecond, s[:len(s)-2]
	case len(s) > 2 && s[len(s)-2:] == "us":
		unit, num = Microsecond, s[:len(s)-2]
	case len(s) > 2 && s[len(s)-2:] == "ms":
		unit, num = Millisecond, s[:len(s)-2]
	case len(s) > 1 && s[len(s)-1:] == "s":
		unit, num = Second, s[:len(s)-1]
	default:
		return 0, fmt.Errorf("sim: duration %q needs a ns/us/ms/s suffix", s)
	}
	// Parse "<int>[.<frac>]" by hand: the integer part scales by the whole
	// unit, the fractional digits by successively smaller powers of ten.
	// Avoids float rounding so ParseDuration(d.String()) round-trips.
	intPart, fracPart := num, ""
	for i := 0; i < len(num); i++ {
		if num[i] == '.' {
			intPart, fracPart = num[:i], num[i+1:]
			break
		}
	}
	if intPart == "" && fracPart == "" {
		return 0, fmt.Errorf("sim: empty duration %q", s)
	}
	var d Duration
	for i := 0; i < len(intPart); i++ {
		c := intPart[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("sim: bad duration %q", s)
		}
		d = d*10 + Duration(c-'0')*unit
		if d < 0 {
			return 0, fmt.Errorf("sim: duration %q overflows", s)
		}
	}
	scale := unit
	for i := 0; i < len(fracPart); i++ {
		c := fracPart[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("sim: bad duration %q", s)
		}
		scale /= 10
		d += Duration(c-'0') * scale
	}
	return d, nil
}
