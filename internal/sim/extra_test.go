package sim

import (
	"fmt"
	"testing"
)

func TestTrySendTryRecv(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 2)
	if _, ok := ch.TryRecv(); ok {
		t.Error("TryRecv on empty chan succeeded")
	}
	if !ch.TrySend(1) || !ch.TrySend(2) {
		t.Error("TrySend within capacity failed")
	}
	if ch.TrySend(3) {
		t.Error("TrySend beyond capacity succeeded")
	}
	if v, ok := ch.TryRecv(); !ok || v != 1 {
		t.Errorf("TryRecv = %d, %v", v, ok)
	}
	if ch.Len() != 1 {
		t.Errorf("Len = %d", ch.Len())
	}
	env.Close()
}

func TestSendOnClosedChanPanics(t *testing.T) {
	env := NewEnv()
	ch := NewChan[int](env, 0)
	ch.Close()
	if !ch.Closed() {
		t.Error("Closed() false after Close")
	}
	defer func() {
		if recover() == nil {
			t.Error("TrySend on closed chan did not panic")
		}
		env.Close()
	}()
	ch.TrySend(1)
}

func TestAfterAndProcInterleaving(t *testing.T) {
	// Events at the same instant run in the order they were *scheduled*:
	// the callback is stamped at setup time, while the proc's sleep event
	// is stamped when the proc runs (after its start event), so the
	// callback fires first.
	env := NewEnv()
	var order []string
	env.Go("p", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		order = append(order, "proc")
	})
	env.After(10*Microsecond, func() { order = append(order, "cb") })
	env.Run()
	if len(order) != 2 || order[0] != "cb" || order[1] != "proc" {
		t.Errorf("order = %v, want [cb proc] (schedule-time FIFO)", order)
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	env := NewEnv()
	fired := 0
	env.After(Duration(100), func() { fired++ })
	env.After(Duration(101), func() { fired++ })
	env.RunUntil(Time(100))
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (boundary inclusive)", fired)
	}
	env.Run()
	if fired != 2 {
		t.Errorf("fired = %d after full Run", fired)
	}
}

func TestEnvRandDeterministic(t *testing.T) {
	a, b := NewEnv(), NewEnv()
	for i := 0; i < 100; i++ {
		if a.Rand.Int63() != b.Rand.Int63() {
			t.Fatal("fresh envs diverge in Rand stream")
		}
	}
	a.Close()
	b.Close()
}

func TestEnvString(t *testing.T) {
	env := NewEnv()
	if s := env.String(); s == "" {
		t.Error("empty String()")
	}
	env.Close()
}

func TestIdle(t *testing.T) {
	env := NewEnv()
	if !env.Idle() {
		t.Error("fresh env not idle")
	}
	env.After(Microsecond, func() {})
	if env.Idle() {
		t.Error("env with pending event reported idle")
	}
	env.Run()
	if !env.Idle() {
		t.Error("drained env not idle")
	}
	env.Close()
}

func TestSemaphoreTryAcquire(t *testing.T) {
	env := NewEnv()
	s := NewSemaphore(env, 3)
	if !s.TryAcquire(2) {
		t.Error("TryAcquire(2) of 3 failed")
	}
	if s.TryAcquire(2) {
		t.Error("TryAcquire(2) of 1 succeeded")
	}
	s.Release(1)
	if !s.TryAcquire(2) {
		t.Error("TryAcquire after release failed")
	}
	env.Close()
}

func TestManyProcsStress(t *testing.T) {
	// A few thousand processes with mixed primitives must drain cleanly
	// and deterministically.
	run := func() Time {
		env := NewEnv()
		ch := NewChan[int](env, 4)
		sem := NewSemaphore(env, 3)
		for i := 0; i < 500; i++ {
			i := i
			env.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				sem.Acquire(p, 1)
				p.Sleep(Duration(i%17) * Microsecond)
				ch.Send(p, i)
				sem.Release(1)
			})
		}
		env.Go("drain", func(p *Proc) {
			for i := 0; i < 500; i++ {
				ch.Recv(p)
			}
		})
		end := env.Run()
		env.Close()
		return end
	}
	if a, b := run(), run(); a != b {
		t.Errorf("stress runs diverge: %v vs %v", a, b)
	}
}
