package sim

// Chan is a FIFO message queue between simulated processes. A capacity of
// zero or less means unbounded; otherwise Send blocks while the buffer is
// full. Unlike Go channels there is no rendezvous mode: a Send into an
// unbounded or non-full channel completes immediately at the current
// virtual time.
type Chan[T any] struct {
	buf      []T
	capacity int
	notFull  *WaitQueue
	notEmpty *WaitQueue
	closed   bool
}

// NewChan returns a channel with the given capacity (<= 0 for unbounded).
func NewChan[T any](env *Env, capacity int) *Chan[T] {
	return &Chan[T]{
		capacity: capacity,
		notFull:  NewWaitQueue(env),
		notEmpty: NewWaitQueue(env),
	}
}

// Len returns the number of buffered messages.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Close marks the channel closed: Recv on an empty closed channel returns
// ok == false, and Send panics.
func (c *Chan[T]) Close() {
	c.closed = true
	c.notEmpty.WakeAll()
}

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Send enqueues v, parking while a bounded channel is full.
func (c *Chan[T]) Send(p *Proc, v T) {
	for c.capacity > 0 && len(c.buf) >= c.capacity {
		c.notFull.Wait(p)
	}
	if c.closed {
		panic("sim: send on closed Chan")
	}
	c.buf = append(c.buf, v)
	c.notEmpty.WakeOne()
}

// TrySend enqueues v if the channel is not full, reporting success.
func (c *Chan[T]) TrySend(v T) bool {
	if c.closed {
		panic("sim: send on closed Chan")
	}
	if c.capacity > 0 && len(c.buf) >= c.capacity {
		return false
	}
	c.buf = append(c.buf, v)
	c.notEmpty.WakeOne()
	return true
}

// Recv dequeues the oldest message, parking while the channel is empty.
// ok is false if the channel is closed and drained.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	for len(c.buf) == 0 {
		if c.closed {
			return v, false
		}
		c.notEmpty.Wait(p)
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	c.notFull.WakeOne()
	return v, true
}

// TryRecv dequeues without blocking; ok reports whether a message was taken.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) == 0 {
		return v, false
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	c.notFull.WakeOne()
	return v, true
}

// RecvTimeout dequeues the oldest message, parking at most d. ok is false
// on timeout or when the channel is closed and drained.
func (c *Chan[T]) RecvTimeout(p *Proc, d Duration) (v T, ok bool) {
	deadline := p.env.now.Add(d)
	for len(c.buf) == 0 {
		if c.closed {
			return v, false
		}
		remain := deadline.Sub(p.env.now)
		if remain <= 0 {
			return v, false
		}
		c.notEmpty.WaitTimeout(p, remain)
		if len(c.buf) == 0 && p.env.now >= deadline {
			return v, false
		}
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	c.notFull.WakeOne()
	return v, true
}
