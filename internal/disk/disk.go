// Package disk models the paper's local swap disk (Seagate ST340014A,
// 40 GB, 7200 RPM ATA): distance-dependent seeks, rotational latency, and
// media-rate transfer. It implements blockdev.Driver, serving one request
// at a time like a single spindle.
//
// Sequential request streams (testswap write-out) run near media rate;
// random page-in streams (quicksort) collapse to a few milliseconds per
// request — the asymmetry behind the paper's 4.5-21x HPBD-vs-disk gaps.
package disk

import (
	"math"

	"hpbd/internal/blockdev"
	"hpbd/internal/sim"
)

// Params describes the mechanical model.
type Params struct {
	// Capacity is the full device size in bytes; seek distance is scaled
	// against it, so keep it at the real disk's size even when the swap
	// area on it is small.
	Capacity int64
	// MediaMBps is the sustained media transfer rate.
	MediaMBps float64
	// MinSeek is the single-track seek (paid whenever the head moves).
	MinSeek sim.Duration
	// FullSeek is the full-stroke seek; distance cost interpolates with
	// a square-root curve between MinSeek and FullSeek.
	FullSeek sim.Duration
	// HalfRotation is the average rotational latency on a discontiguous
	// access (7200 RPM -> 4.17 ms).
	HalfRotation sim.Duration
	// PerRequest is controller/command overhead per request.
	PerRequest sim.Duration
}

// DefaultParams returns the ST340014A model.
func DefaultParams() Params {
	return Params{
		Capacity:     40 << 30,
		MediaMBps:    42,
		MinSeek:      800 * sim.Microsecond,
		FullSeek:     9 * sim.Millisecond,
		HalfRotation: 4170 * sim.Microsecond,
		PerRequest:   200 * sim.Microsecond,
	}
}

// Disk is a simulated spindle exposing `sectors` of addressable space
// (the swap partition) physically located within a Params.Capacity device.
type Disk struct {
	env     *sim.Env
	params  Params
	name    string
	sectors int64
	headPos int64
	store   []byte // backing bytes, so data round-trips are real

	// Busy time accounting for utilization reports.
	BusyTime sim.Duration
	Requests int
}

// New creates a disk exposing size bytes (must be sector-aligned).
func New(env *sim.Env, name string, size int64, params Params) *Disk {
	return &Disk{
		env:     env,
		params:  params,
		name:    name,
		sectors: size / blockdev.SectorSize,
		store:   make([]byte, size),
	}
}

// Name implements blockdev.Driver.
func (d *Disk) Name() string { return d.name }

// Sectors implements blockdev.Driver.
func (d *Disk) Sectors() int64 { return d.sectors }

// ServiceTime returns the modeled time for a request at `sector` of n
// bytes given the current head position, without performing it.
func (d *Disk) ServiceTime(sector int64, n int) sim.Duration {
	t := d.params.PerRequest
	if sector != d.headPos {
		dist := sector - d.headPos
		if dist < 0 {
			dist = -dist
		}
		frac := float64(dist*blockdev.SectorSize) / float64(d.params.Capacity)
		if frac > 1 {
			frac = 1
		}
		seek := d.params.MinSeek + sim.Duration(float64(d.params.FullSeek-d.params.MinSeek)*math.Sqrt(frac))
		t += seek + d.params.HalfRotation
	}
	bps := d.params.MediaMBps * 1e6
	t += sim.Duration(float64(n) / bps * float64(sim.Second))
	return t
}

// Submit implements blockdev.Driver: it blocks the dispatch process for
// the mechanical service time (single spindle), moves real bytes, then
// completes the request.
func (d *Disk) Submit(p *sim.Proc, r *blockdev.Request) {
	t := d.ServiceTime(r.Sector, r.Bytes())
	p.Sleep(t)
	d.BusyTime += t
	d.Requests++
	off := r.Sector * blockdev.SectorSize
	if r.Write {
		copy(d.store[off:], r.Data())
	} else {
		r.Scatter(d.store[off : off+int64(r.Bytes())])
	}
	d.headPos = r.End()
	r.Complete(nil)
}

// Peek returns a copy of stored bytes for test verification.
func (d *Disk) Peek(off int64, n int) []byte {
	out := make([]byte, n)
	copy(out, d.store[off:])
	return out
}
