package disk

import (
	"bytes"
	"testing"

	"hpbd/internal/blockdev"
	"hpbd/internal/netmodel"
	"hpbd/internal/sim"
)

func TestSequentialNearMediaRate(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, "hda", 64<<20, DefaultParams())
	q := blockdev.NewQueue(env, netmodel.DefaultHost(), d)
	const total = 16 << 20
	var elapsed sim.Duration
	env.Go("io", func(p *sim.Proc) {
		t0 := p.Now()
		var last *blockdev.IO
		for off := 0; off < total; off += 128 * 1024 {
			io, err := q.Submit(true, int64(off/blockdev.SectorSize), make([]byte, 128*1024))
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			q.Unplug()
			last = io
		}
		last.Wait(p)
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	mbps := float64(total) / 1e6 / elapsed.Seconds()
	if mbps < 25 || mbps > 45 {
		t.Errorf("sequential write rate %.1f MB/s, want 25-45 (media 42)", mbps)
	}
}

func TestRandomReadsPaySeekAndRotation(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, "hda", 64<<20, DefaultParams())
	q := blockdev.NewQueue(env, netmodel.DefaultHost(), d)
	const reqs = 64
	var elapsed sim.Duration
	env.Go("io", func(p *sim.Proc) {
		t0 := p.Now()
		for i := 0; i < reqs; i++ {
			// Jump around the device.
			sector := int64((i * 7919 * 8) % (60 << 20 / blockdev.SectorSize))
			io, err := q.Submit(false, sector, make([]byte, 4096))
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			q.Unplug()
			io.Wait(p)
		}
		elapsed = p.Now().Sub(t0)
	})
	env.Run()
	env.Close()
	per := elapsed / reqs
	if per < 4*sim.Millisecond || per > 16*sim.Millisecond {
		t.Errorf("random 4K read = %v each, want 4-16ms", per)
	}
}

func TestSequentialVsRandomAsymmetry(t *testing.T) {
	run := func(random bool) sim.Duration {
		env := sim.NewEnv()
		d := New(env, "hda", 64<<20, DefaultParams())
		q := blockdev.NewQueue(env, netmodel.DefaultHost(), d)
		var elapsed sim.Duration
		env.Go("io", func(p *sim.Proc) {
			t0 := p.Now()
			for i := 0; i < 32; i++ {
				sector := int64(i * 256)
				if random {
					sector = int64((i*104729*8 + 123456) % (32 << 20 / blockdev.SectorSize))
				}
				io, _ := q.Submit(false, sector, make([]byte, 128*1024))
				q.Unplug()
				io.Wait(p)
			}
			elapsed = p.Now().Sub(t0)
		})
		env.Run()
		env.Close()
		return elapsed
	}
	seq, rnd := run(false), run(true)
	if float64(rnd) < 1.5*float64(seq) {
		t.Errorf("random (%v) should be >1.5x sequential (%v)", rnd, seq)
	}
}

func TestDataRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, "hda", 1<<20, DefaultParams())
	q := blockdev.NewQueue(env, netmodel.DefaultHost(), d)
	pattern := make([]byte, 8192)
	for i := range pattern {
		pattern[i] = byte(i*13 + 7)
	}
	var got []byte
	env.Go("io", func(p *sim.Proc) {
		w, _ := q.Submit(true, 64, append([]byte(nil), pattern...))
		q.Unplug()
		w.Wait(p)
		buf := make([]byte, 8192)
		r, _ := q.Submit(false, 64, buf)
		q.Unplug()
		r.Wait(p)
		got = buf
	})
	env.Run()
	env.Close()
	if !bytes.Equal(got, pattern) {
		t.Error("disk data round trip mismatch")
	}
	if !bytes.Equal(d.Peek(64*blockdev.SectorSize, 8192), pattern) {
		t.Error("Peek mismatch")
	}
}

func TestServiceTimeContiguousHasNoSeek(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, "hda", 1<<20, DefaultParams())
	env.Close()
	d.headPos = 100
	contig := d.ServiceTime(100, 4096)
	seeky := d.ServiceTime(5000, 4096)
	if contig >= seeky {
		t.Errorf("contiguous (%v) should be cheaper than seeking (%v)", contig, seeky)
	}
	if contig > sim.Millisecond {
		t.Errorf("contiguous 4K = %v, want < 1ms", contig)
	}
}
