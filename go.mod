module hpbd

go 1.22
