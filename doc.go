// Package hpbd reproduces "Swapping to Remote Memory over InfiniBand: An
// Approach using a High Performance Network Block Device" (Liang, Noronha,
// Panda; IEEE Cluster 2005) as a complete Go system.
//
// The paper's artifact was a Linux 2.4 kernel block driver that served
// swap I/O from remote memory servers over Mellanox InfiniBand verbs.
// This repository rebuilds the full stack twice:
//
//   - A deterministic simulation (internal/sim, internal/ib, internal/vm,
//     internal/blockdev, internal/hpbd, internal/nbd, ...) calibrated to
//     the paper's microbenchmarks, which regenerates every figure of the
//     evaluation (internal/experiments, cmd/hpbd-bench, bench_test.go).
//
//   - A real user-space remote-memory block device over TCP
//     (internal/netblock, cmd/hpbd-server, cmd/hpbdctl) speaking the same
//     wire protocol (internal/wire), runnable on any two machines.
//
// Start with the README, DESIGN.md for the architecture and experiment
// index, and examples/quickstart for a first run.
package hpbd
