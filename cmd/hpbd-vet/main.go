// Command hpbd-vet runs the determinism-contract lint suite (internal/lint)
// over the given package patterns, in the style of a go/analysis
// multichecker:
//
//	go run ./cmd/hpbd-vet ./...
//
// It prints one line per finding and exits non-zero if any survive the
// //hpbd:allow directives. Run it from the module root (it shells out to
// `go list` in the working directory).
//
// With -json the findings are emitted as one stable, position-sorted JSON
// array on stdout (empty array when clean), so CI can attach per-line
// annotations instead of grepping the human output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hpbd/internal/lint"
	"hpbd/internal/lint/load"
)

// jsonFinding is the machine-readable finding shape. Field order and
// names are part of the CI contract; keep them stable.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hpbd-vet [-json] [packages]\n\nAnalyzers:\n%s\nOpt out of a finding with `//hpbd:allow <analyzer> -- <reason>` on or above the line.\n", lint.Doc())
	}
	flag.Parse()
	if *list {
		fmt.Print(lint.Doc())
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	env, err := load.List(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	pkgs, err := env.Targets()
	if err != nil {
		fatal(err)
	}
	findings, err := lint.Run(pkgs, lint.Analyzers)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			// Working-directory-relative paths: what CI annotations want.
			file := f.Pos.Filename
			if rel, relErr := filepath.Rel(cwd, file); relErr == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     file,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hpbd-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpbd-vet:", err)
	os.Exit(2)
}
