// Command hpbd-vet runs the determinism-contract lint suite (internal/lint)
// over the given package patterns, in the style of a go/analysis
// multichecker:
//
//	go run ./cmd/hpbd-vet ./...
//
// It prints one line per finding and exits non-zero if any survive the
// //hpbd:allow directives. Run it from the module root (it shells out to
// `go list` in the working directory).
package main

import (
	"flag"
	"fmt"
	"os"

	"hpbd/internal/lint"
	"hpbd/internal/lint/load"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hpbd-vet [packages]\n\nAnalyzers:\n%s\nOpt out of a finding with `//hpbd:allow <analyzer> -- <reason>` on or above the line.\n", lint.Doc())
	}
	flag.Parse()
	if *list {
		fmt.Print(lint.Doc())
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	env, err := load.List(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	pkgs, err := env.Targets()
	if err != nil {
		fatal(err)
	}
	findings, err := lint.Run(pkgs, lint.Analyzers)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hpbd-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpbd-vet:", err)
	os.Exit(2)
}
