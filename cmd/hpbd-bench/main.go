// Command hpbd-bench regenerates the paper's tables and figures from the
// simulation. With no arguments it runs every experiment; -exp selects a
// comma-separated subset.
//
// Usage:
//
//	hpbd-bench [-exp fig5,fig7] [-scale 32] [-seed 1] [-list]
//	hpbd-bench -trace trace.json [-metrics metrics.om] [-scale 32] [-seed 1]
//	hpbd-bench -trace trace.json -faults "crash@8ms=mem0,delay@2ms+4ms~200us=mem1"
//	hpbd-bench -health [-health-interval 100us] [-faults "crash@8ms=mem0"] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hpbd/internal/experiments"
	"hpbd/internal/health"
	"hpbd/internal/sim"
	"hpbd/internal/telemetry"
)

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scale    = flag.Int("scale", experiments.PaperScale, "scale divisor for paper sizes")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		csv      = flag.Bool("csv", false, "emit CSV rows instead of tables")
		trace    = flag.String("trace", "", "run a traced multi-server testswap and write Chrome trace JSON to this path")
		metrics  = flag.String("metrics", "", "with -trace: also write the OpenMetrics exposition to this path")
		faults   = flag.String("faults", "", "with -trace or -health: replay this fault spec against a mirrored node (see internal/faultsim)")
		healthOn = flag.Bool("health", false, "run testswap with the fleet health engine and print its report (-csv: the sample ring time series)")
		healthIv = flag.String("health-interval", "", "with -health: sample interval, e.g. 100us (default: engine default)")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}

	if *healthOn {
		if err := healthRun(*faults, *healthIv, *scale, *seed, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "health: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *healthIv != "" {
		fmt.Fprintln(os.Stderr, "-health-interval requires -health")
		os.Exit(1)
	}

	if *trace != "" {
		if err := tracedRun(*trace, *metrics, *faults, *scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *faults != "" {
		fmt.Fprintln(os.Stderr, "-faults requires -trace or -health (fault replay needs a run to replay against)")
		os.Exit(1)
	}

	names := experiments.Names()
	if *exp != "" {
		names = strings.Split(*exp, ",")
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	failed := false
	for _, name := range names {
		name = strings.TrimSpace(name)
		run, ok := experiments.Registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "%v\n", experiments.UnknownExperiment(name))
			failed = true
			continue
		}
		start := time.Now() //hpbd:allow walltime -- reports real wall time of the sim run, not a sim quantity
		res, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
			continue
		}
		if *csv {
			fmt.Print(experiments.CSV(res))
		} else {
			fmt.Print(experiments.Format(res))
			fmt.Printf("   (wall time %.1fs)\n\n", time.Since(start).Seconds()) //hpbd:allow walltime -- reports real wall time of the sim run, not a sim quantity
		}
	}
	if failed {
		os.Exit(1)
	}
}

// healthRun executes testswap with the fleet health engine sampling the
// registry (replaying a fault schedule against a mirrored node when
// faultSpec is non-empty) and prints the health report — SLO compliance,
// rule hits, alert timeline and per-server rollup. With csv the sample
// ring's deterministic time series goes to stdout instead.
func healthRun(faultSpec, interval string, scale int, seed int64, csv bool) error {
	var hcfg health.Config
	if interval != "" {
		iv, err := sim.ParseDuration(interval)
		if err != nil {
			return fmt.Errorf("bad -health-interval: %v", err)
		}
		hcfg.SampleInterval = iv
	}
	cfg := experiments.Config{Scale: scale, Seed: seed}
	node, err := experiments.HealthRun(cfg, 0, faultSpec, hcfg)
	if err != nil {
		return err
	}
	if csv {
		return node.Health.Ring().WriteCSV(os.Stdout)
	}
	fmt.Print(node.Health.Report())
	return nil
}

// tracedRun executes the traced multi-server testswap workload, writes
// the Chrome trace-event file (and optionally the OpenMetrics exposition),
// and prints the telemetry summary plus the critical-path breakdown. A
// non-empty fault spec switches to a mirrored node with the schedule
// replayed against it, so recovery shows up in the trace.
func tracedRun(path, metricsPath, faultSpec string, scale int, seed int64) error {
	cfg := experiments.Config{Scale: scale, Seed: seed}
	var reg *telemetry.Registry
	var err error
	if faultSpec != "" {
		reg, err = experiments.TraceRunFaults(cfg, 2, faultSpec)
	} else {
		reg, err = experiments.TraceRun(cfg, 4)
	}
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Tracer().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if metricsPath != "" {
		mf, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := reg.WriteOpenMetrics(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (OpenMetrics exposition)\n", metricsPath)
	}
	fmt.Printf("wrote %s (%d events; open at chrome://tracing or ui.perfetto.dev)\n\n",
		path, reg.Tracer().Len())
	fmt.Print(reg.Summary())
	if lc := reg.Lifecycle(); lc != nil {
		fmt.Println()
		fmt.Print(lc.BreakdownTable())
	}
	return nil
}
