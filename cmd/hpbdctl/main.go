// Command hpbdctl exercises a running hpbd-server: it attaches an area,
// verifies data integrity with random pages, and measures sequential and
// random throughput with pipelined requests. The trace, flightrec,
// faults, placement, health and top subcommands need no server: they run
// the simulated multi-server swap workload, trace writing a Chrome
// trace-event file plus a metrics summary, flightrec printing the
// critical-path breakdown and the flight recorder's last-N-requests
// table, and faults replaying a fault schedule against a mirrored node
// to show recovery in the trace. The placement subcommand runs an
// elastic node through a mid-run fleet grow and pretty-prints the
// resulting placement directory. The health subcommand runs the fleet
// health engine over the workload — replaying -spec's fault schedule
// against a mirrored node when given — and prints its report: SLO
// compliance, anomaly-rule hits, the alert timeline and the per-server
// rollup. The top subcommand runs an elastic node through a mid-run grow
// and prints the per-server/per-epoch utilization table. The tenants
// subcommand runs a multi-tenant fleet from -qos's QoS spec under a
// deterministic all-tenants storm and prints the per-tenant credit,
// scheduler and quota table, with starvation alerts for tenants held
// below their weighted entitlement (-fifo swaps in the unfair control
// scheduler to show what the alerts catch). All simulated subcommands
// are deterministic for a given seed, scale and spec.
//
// Usage:
//
//	hpbdctl -server host:10809 -size 64 verify
//	hpbdctl -server host:10809 -size 64 -credits 16 bench
//	hpbdctl -out trace.json -servers 4 trace
//	hpbdctl -servers 2 flightrec
//	hpbdctl -out faults.json -spec "crash@8ms=mem0" faults
//	hpbdctl -servers 2 placement
//	hpbdctl -servers 2 -spec "crash@8ms=mem0" health
//	hpbdctl -spec "" health       (healthy fleet, no fault replay)
//	hpbdctl -servers 2 -interval 100us top
//	hpbdctl -qos "pool=32,a:w1,b:w2:q1M" tenants
//	hpbdctl -qos "pool=2,a:w1:r30,b:w10" -fifo tenants   (starved tenant demo)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"hpbd/internal/experiments"
	"hpbd/internal/health"
	"hpbd/internal/netblock"
	"hpbd/internal/sim"
)

const usageCommands = "status|verify|bench|trace|flightrec|faults|placement|health|top|tenants"

func main() {
	var (
		server   = flag.String("server", "127.0.0.1:10809", "server address")
		sizeMB   = flag.Int64("size", 64, "area size to attach, MiB")
		credits  = flag.Int("credits", 16, "outstanding request credit")
		seed     = flag.Int64("seed", 1, "verification RNG seed")
		out      = flag.String("out", "trace.json", "trace: output path for Chrome trace-event JSON")
		servers  = flag.Int("servers", 4, "trace: number of simulated memory servers")
		scale    = flag.Int("scale", experiments.PaperScale, "trace: scale divisor for paper sizes")
		spec     = flag.String("spec", "crash@8ms=mem0", "faults/health: fault schedule spec (see internal/faultsim; health: \"\" disables)")
		interval = flag.String("interval", "", "health/top: sample interval, e.g. 100us (default: engine default)")
		qos      = flag.String("qos", "pool=32,a:w1,b:w2:q1M", "tenants: QoS spec (pool=N,id:wW:rR:qBYTES,...)")
		fifo     = flag.Bool("fifo", false, "tenants: use the strict-FIFO control scheduler instead of WFQ")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "verify"
	}
	// Reject bad invocations before doing any work (in particular before
	// dialing a server): an unknown subcommand or trailing garbage exits
	// non-zero with usage on stderr, so scripts fail fast instead of
	// reading a usage page off a zero status.
	switch cmd {
	case "status", "verify", "bench", "trace", "flightrec", "faults", "placement", "health", "top", "tenants":
	default:
		fmt.Fprintf(os.Stderr, "hpbdctl: unknown command %q\nusage: hpbdctl [flags] <%s>\n", cmd, usageCommands)
		os.Exit(2)
	}
	if flag.NArg() > 1 {
		fmt.Fprintf(os.Stderr, "hpbdctl: unexpected arguments after %q: %v\nusage: hpbdctl [flags] <%s>\n",
			cmd, flag.Args()[1:], usageCommands)
		os.Exit(2)
	}
	hcfg, err := healthConfig(*interval)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpbdctl: %v\n", err)
		os.Exit(2)
	}

	// trace, flightrec, faults, placement, health and top run entirely in
	// the simulator; no server connection needed.
	simCfg := experiments.Config{Scale: *scale, Seed: *seed}
	switch cmd {
	case "trace":
		if err := trace(*out, *servers, *scale, *seed); err != nil {
			log.Fatalf("hpbdctl trace: %v", err)
		}
		return
	case "flightrec":
		if err := flightrec(*servers, *scale, *seed); err != nil {
			log.Fatalf("hpbdctl flightrec: %v", err)
		}
		return
	case "faults":
		if err := faultsRun(*out, *spec, *servers, *scale, *seed); err != nil {
			log.Fatalf("hpbdctl faults: %v", err)
		}
		return
	case "placement":
		dump, err := experiments.PlacementDump(simCfg, *servers)
		if err != nil {
			log.Fatalf("hpbdctl placement: %v", err)
		}
		fmt.Print(dump)
		return
	case "health":
		node, err := experiments.HealthRun(simCfg, *servers, *spec, hcfg)
		if err != nil {
			log.Fatalf("hpbdctl health: %v", err)
		}
		fmt.Print(node.Health.Report())
		return
	case "top":
		node, err := experiments.HealthTopRun(simCfg, *servers, hcfg)
		if err != nil {
			log.Fatalf("hpbdctl top: %v", err)
		}
		fmt.Print(node.Health.TopTable())
		return
	case "tenants":
		table, err := experiments.TenantsReport(*qos, *fifo)
		if err != nil {
			log.Fatalf("hpbdctl tenants: %v", err)
		}
		fmt.Print(table)
		return
	}

	c, err := netblock.Dial(*server, *sizeMB<<20, *credits)
	if err != nil {
		log.Fatalf("hpbdctl: %v", err)
	}
	defer c.Close()

	switch cmd {
	case "status":
		capacity, allocated, err := c.Stat()
		if err != nil {
			log.Fatalf("hpbdctl status: %v", err)
		}
		fmt.Printf("server %s: %d MiB capacity, %d MiB allocated (%.0f%%)\n",
			*server, capacity>>20, allocated>>20, 100*float64(allocated)/float64(capacity))
	case "verify":
		if err := verify(c, *seed); err != nil {
			log.Fatalf("hpbdctl verify: %v", err)
		}
		fmt.Println("verify: OK")
	case "bench":
		bench(c)
	}
}

// healthConfig builds the health engine config from the -interval flag
// (empty keeps the engine's defaults).
func healthConfig(interval string) (health.Config, error) {
	var hcfg health.Config
	if interval == "" {
		return hcfg, nil
	}
	iv, err := sim.ParseDuration(interval)
	if err != nil {
		return hcfg, fmt.Errorf("bad -interval: %v", err)
	}
	hcfg.SampleInterval = iv
	return hcfg, nil
}

// trace runs the simulated multi-server testswap workload with tracing
// enabled, writes the span timeline as Chrome trace-event JSON (load it
// at chrome://tracing or https://ui.perfetto.dev) and prints the metrics
// summary.
func trace(out string, servers, scale int, seed int64) error {
	reg, err := experiments.TraceRun(experiments.Config{Scale: scale, Seed: seed}, servers)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := reg.Tracer().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d events; open at chrome://tracing or ui.perfetto.dev)\n\n",
		out, reg.Tracer().Len())
	fmt.Print(reg.Summary())
	return nil
}

// flightrec runs the simulated multi-server quick sort (whose random
// access pattern produces the most varied request lifecycles), prints the
// critical-path breakdown, and dumps the always-on flight recorder: the
// last N requests with their exact per-stage latency split.
func flightrec(servers, scale int, seed int64) error {
	reg, err := experiments.TraceRunQuicksort(experiments.Config{Scale: scale, Seed: seed}, servers)
	if err != nil {
		return err
	}
	lc := reg.Lifecycle()
	if lc == nil {
		return fmt.Errorf("the swap device recorded no request lifecycles")
	}
	fmt.Print(lc.BreakdownTable())
	fmt.Println()
	return lc.Flight().Dump(os.Stdout, "on-demand (hpbdctl flightrec)")
}

// faultsRun replays a fault schedule against a mirrored simulated node
// running testswap, writes the Chrome trace (fault injections and
// recovery appear as instants on the faultsim/device tracks), and prints
// the metrics summary — recovery counters included — plus the per-stage
// breakdown of the surviving requests.
func faultsRun(out, spec string, servers, scale int, seed int64) error {
	reg, err := experiments.TraceRunFaults(experiments.Config{Scale: scale, Seed: seed}, servers, spec)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := reg.Tracer().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d events; open at chrome://tracing or ui.perfetto.dev)\n\n",
		out, reg.Tracer().Len())
	fmt.Print(reg.Summary())
	if lc := reg.Lifecycle(); lc != nil {
		fmt.Println()
		fmt.Print(lc.BreakdownTable())
	}
	return nil
}

// verify writes random pages across the area and reads them back.
func verify(c *netblock.Client, seed int64) error {
	rnd := rand.New(rand.NewSource(seed))
	const page = 4096
	pages := c.Size() / page
	checked := 0
	for i := int64(0); i < pages; i += 37 { // stride to cover the area fast
		buf := make([]byte, page)
		rnd.Read(buf)
		if _, err := c.WriteAt(buf, i*page); err != nil {
			return fmt.Errorf("write page %d: %w", i, err)
		}
		got := make([]byte, page)
		if _, err := c.ReadAt(got, i*page); err != nil {
			return fmt.Errorf("read page %d: %w", i, err)
		}
		if !bytes.Equal(got, buf) {
			return fmt.Errorf("page %d corrupted", i)
		}
		checked++
	}
	fmt.Printf("verified %d pages\n", checked)
	return nil
}

// bench measures pipelined write and read throughput.
func bench(c *netblock.Client) {
	const chunk = 128 * 1024
	n := c.Size() / chunk
	buf := make([]byte, chunk)
	rand.New(rand.NewSource(2)).Read(buf)

	start := time.Now() //hpbd:allow walltime -- benchmarks the real TCP netblock server
	var waits []func() error
	for i := int64(0); i < n; i++ {
		w, err := c.WriteAsync(buf, i*chunk)
		if err != nil {
			log.Fatalf("bench write: %v", err)
		}
		waits = append(waits, w)
	}
	for _, w := range waits {
		if err := w(); err != nil {
			log.Fatalf("bench write wait: %v", err)
		}
	}
	wElapsed := time.Since(start) //hpbd:allow walltime -- benchmarks the real TCP netblock server

	start = time.Now() //hpbd:allow walltime -- benchmarks the real TCP netblock server
	got := make([]byte, chunk)
	for i := int64(0); i < n; i++ {
		if _, err := c.ReadAt(got, i*chunk); err != nil {
			log.Fatalf("bench read: %v", err)
		}
	}
	rElapsed := time.Since(start) //hpbd:allow walltime -- benchmarks the real TCP netblock server

	mb := float64(n*chunk) / 1e6
	fmt.Printf("write: %.1f MB in %v (%.1f MB/s, pipelined)\n", mb, wElapsed, mb/wElapsed.Seconds())
	fmt.Printf("read:  %.1f MB in %v (%.1f MB/s, serial)\n", mb, rElapsed, mb/rElapsed.Seconds())
	fmt.Println()
	fmt.Print(c.Breakdown())
}
