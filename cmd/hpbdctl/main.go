// Command hpbdctl exercises a running hpbd-server: it attaches an area,
// verifies data integrity with random pages, and measures sequential and
// random throughput with pipelined requests. The trace, flightrec and
// faults subcommands need no server: they run the simulated multi-server
// swap workload, trace writing a Chrome trace-event file plus a metrics
// summary, flightrec printing the critical-path breakdown and the flight
// recorder's last-N-requests table, and faults replaying a fault
// schedule against a mirrored node to show recovery in the trace. The
// placement subcommand runs an elastic node through a mid-run fleet grow
// and pretty-prints the resulting placement directory (deterministic for
// a given seed and scale).
//
// Usage:
//
//	hpbdctl -server host:10809 -size 64 verify
//	hpbdctl -server host:10809 -size 64 -credits 16 bench
//	hpbdctl -out trace.json -servers 4 trace
//	hpbdctl -servers 2 flightrec
//	hpbdctl -out faults.json -spec "crash@8ms=mem0" faults
//	hpbdctl -servers 2 placement
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"hpbd/internal/experiments"
	"hpbd/internal/netblock"
)

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:10809", "server address")
		sizeMB  = flag.Int64("size", 64, "area size to attach, MiB")
		credits = flag.Int("credits", 16, "outstanding request credit")
		seed    = flag.Int64("seed", 1, "verification RNG seed")
		out     = flag.String("out", "trace.json", "trace: output path for Chrome trace-event JSON")
		servers = flag.Int("servers", 4, "trace: number of simulated memory servers")
		scale   = flag.Int("scale", experiments.PaperScale, "trace: scale divisor for paper sizes")
		spec    = flag.String("spec", "crash@8ms=mem0", "faults: fault schedule spec (see internal/faultsim)")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "verify"
	}

	// trace and flightrec run entirely in the simulator; no server
	// connection needed.
	if cmd == "trace" {
		if err := trace(*out, *servers, *scale, *seed); err != nil {
			log.Fatalf("hpbdctl trace: %v", err)
		}
		return
	}
	if cmd == "flightrec" {
		if err := flightrec(*servers, *scale, *seed); err != nil {
			log.Fatalf("hpbdctl flightrec: %v", err)
		}
		return
	}
	if cmd == "faults" {
		if err := faultsRun(*out, *spec, *servers, *scale, *seed); err != nil {
			log.Fatalf("hpbdctl faults: %v", err)
		}
		return
	}
	if cmd == "placement" {
		dump, err := experiments.PlacementDump(experiments.Config{Scale: *scale, Seed: *seed}, *servers)
		if err != nil {
			log.Fatalf("hpbdctl placement: %v", err)
		}
		fmt.Print(dump)
		return
	}

	c, err := netblock.Dial(*server, *sizeMB<<20, *credits)
	if err != nil {
		log.Fatalf("hpbdctl: %v", err)
	}
	defer c.Close()

	switch cmd {
	case "status":
		capacity, allocated, err := c.Stat()
		if err != nil {
			log.Fatalf("hpbdctl status: %v", err)
		}
		fmt.Printf("server %s: %d MiB capacity, %d MiB allocated (%.0f%%)\n",
			*server, capacity>>20, allocated>>20, 100*float64(allocated)/float64(capacity))
	case "verify":
		if err := verify(c, *seed); err != nil {
			log.Fatalf("hpbdctl verify: %v", err)
		}
		fmt.Println("verify: OK")
	case "bench":
		bench(c)
	default:
		log.Fatalf("hpbdctl: unknown command %q (status|verify|bench|trace|flightrec|faults|placement)", cmd)
	}
}

// trace runs the simulated multi-server testswap workload with tracing
// enabled, writes the span timeline as Chrome trace-event JSON (load it
// at chrome://tracing or https://ui.perfetto.dev) and prints the metrics
// summary.
func trace(out string, servers, scale int, seed int64) error {
	reg, err := experiments.TraceRun(experiments.Config{Scale: scale, Seed: seed}, servers)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := reg.Tracer().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d events; open at chrome://tracing or ui.perfetto.dev)\n\n",
		out, reg.Tracer().Len())
	fmt.Print(reg.Summary())
	return nil
}

// flightrec runs the simulated multi-server quick sort (whose random
// access pattern produces the most varied request lifecycles), prints the
// critical-path breakdown, and dumps the always-on flight recorder: the
// last N requests with their exact per-stage latency split.
func flightrec(servers, scale int, seed int64) error {
	reg, err := experiments.TraceRunQuicksort(experiments.Config{Scale: scale, Seed: seed}, servers)
	if err != nil {
		return err
	}
	lc := reg.Lifecycle()
	if lc == nil {
		return fmt.Errorf("the swap device recorded no request lifecycles")
	}
	fmt.Print(lc.BreakdownTable())
	fmt.Println()
	return lc.Flight().Dump(os.Stdout, "on-demand (hpbdctl flightrec)")
}

// faultsRun replays a fault schedule against a mirrored simulated node
// running testswap, writes the Chrome trace (fault injections and
// recovery appear as instants on the faultsim/device tracks), and prints
// the metrics summary — recovery counters included — plus the per-stage
// breakdown of the surviving requests.
func faultsRun(out, spec string, servers, scale int, seed int64) error {
	reg, err := experiments.TraceRunFaults(experiments.Config{Scale: scale, Seed: seed}, servers, spec)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := reg.Tracer().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d events; open at chrome://tracing or ui.perfetto.dev)\n\n",
		out, reg.Tracer().Len())
	fmt.Print(reg.Summary())
	if lc := reg.Lifecycle(); lc != nil {
		fmt.Println()
		fmt.Print(lc.BreakdownTable())
	}
	return nil
}

// verify writes random pages across the area and reads them back.
func verify(c *netblock.Client, seed int64) error {
	rnd := rand.New(rand.NewSource(seed))
	const page = 4096
	pages := c.Size() / page
	checked := 0
	for i := int64(0); i < pages; i += 37 { // stride to cover the area fast
		buf := make([]byte, page)
		rnd.Read(buf)
		if _, err := c.WriteAt(buf, i*page); err != nil {
			return fmt.Errorf("write page %d: %w", i, err)
		}
		got := make([]byte, page)
		if _, err := c.ReadAt(got, i*page); err != nil {
			return fmt.Errorf("read page %d: %w", i, err)
		}
		if !bytes.Equal(got, buf) {
			return fmt.Errorf("page %d corrupted", i)
		}
		checked++
	}
	fmt.Printf("verified %d pages\n", checked)
	return nil
}

// bench measures pipelined write and read throughput.
func bench(c *netblock.Client) {
	const chunk = 128 * 1024
	n := c.Size() / chunk
	buf := make([]byte, chunk)
	rand.New(rand.NewSource(2)).Read(buf)

	start := time.Now() //hpbd:allow walltime -- benchmarks the real TCP netblock server
	var waits []func() error
	for i := int64(0); i < n; i++ {
		w, err := c.WriteAsync(buf, i*chunk)
		if err != nil {
			log.Fatalf("bench write: %v", err)
		}
		waits = append(waits, w)
	}
	for _, w := range waits {
		if err := w(); err != nil {
			log.Fatalf("bench write wait: %v", err)
		}
	}
	wElapsed := time.Since(start) //hpbd:allow walltime -- benchmarks the real TCP netblock server

	start = time.Now() //hpbd:allow walltime -- benchmarks the real TCP netblock server
	got := make([]byte, chunk)
	for i := int64(0); i < n; i++ {
		if _, err := c.ReadAt(got, i*chunk); err != nil {
			log.Fatalf("bench read: %v", err)
		}
	}
	rElapsed := time.Since(start) //hpbd:allow walltime -- benchmarks the real TCP netblock server

	mb := float64(n*chunk) / 1e6
	fmt.Printf("write: %.1f MB in %v (%.1f MB/s, pipelined)\n", mb, wElapsed, mb/wElapsed.Seconds())
	fmt.Printf("read:  %.1f MB in %v (%.1f MB/s, serial)\n", mb, rElapsed, mb/rElapsed.Seconds())
	fmt.Println()
	fmt.Print(c.Breakdown())
}
