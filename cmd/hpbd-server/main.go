// Command hpbd-server runs a real HPBD memory server: it exports part of
// this machine's RAM as remote swap/block space over TCP, speaking the
// repository's HPBD wire protocol.
//
// Usage:
//
//	hpbd-server -listen :10809 -capacity 1024
//
// capacity is in MiB. Clients attach with cmd/hpbdctl or the
// internal/netblock Client API.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"hpbd/internal/netblock"
)

func main() {
	var (
		listen   = flag.String("listen", ":10809", "listen address")
		capacity = flag.Int64("capacity", 512, "exported memory in MiB")
	)
	flag.Parse()

	srv, err := netblock.Serve(*listen, netblock.ServerConfig{
		CapacityBytes: *capacity << 20,
	})
	if err != nil {
		log.Fatalf("hpbd-server: %v", err)
	}
	log.Printf("hpbd-server: exporting %d MiB on %s", *capacity, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("hpbd-server: shutting down")
	srv.Close()
}
