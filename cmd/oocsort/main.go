// Command oocsort demonstrates out-of-core sorting against a remote
// memory server: it generates random keys, sorts them through a small
// local memory budget using an hpbd-server (or an in-memory store when no
// server is given) as run scratch, verifies the result, and reports
// throughput.
//
// Usage:
//
//	oocsort -keys 16000000 -mem 16        # in-process store
//	oocsort -server host:10809 -keys 64000000 -mem 32
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"hpbd/internal/netblock"
	"hpbd/internal/oocsort"
)

func main() {
	var (
		server = flag.String("server", "", "hpbd-server address (empty: in-memory store)")
		keys   = flag.Int("keys", 16_000_000, "number of uint32 keys to sort")
		memMB  = flag.Int64("mem", 16, "local memory budget, MiB")
		seed   = flag.Int64("seed", 1, "input RNG seed")
	)
	flag.Parse()

	dataBytes := int64(*keys) * 4
	storeBytes := dataBytes + (8 << 20)
	var store oocsort.Store
	if *server == "" {
		store = oocsort.NewMemStore(storeBytes)
		fmt.Printf("store: in-process (%d MiB)\n", storeBytes>>20)
	} else {
		c, err := netblock.Dial(*server, storeBytes, 16)
		if err != nil {
			log.Fatalf("oocsort: attach %s: %v", *server, err)
		}
		defer c.Close()
		store = c
		fmt.Printf("store: %s (%d MiB attached)\n", *server, storeBytes>>20)
	}

	fmt.Printf("sorting %d keys (%d MiB) with a %d MiB budget\n", *keys, dataBytes>>20, *memMB)
	rnd := rand.New(rand.NewSource(*seed))
	input := make([]byte, dataBytes)
	for i := 0; i < *keys; i++ {
		binary.LittleEndian.PutUint32(input[i*4:], rnd.Uint32())
	}

	var out bytes.Buffer
	out.Grow(int(dataBytes))
	start := time.Now() //hpbd:allow walltime -- times a real out-of-core sort on the host
	st, err := oocsort.Sort(&out, bytes.NewReader(input), *memMB<<20, store)
	if err != nil {
		log.Fatalf("oocsort: %v", err)
	}
	elapsed := time.Since(start) //hpbd:allow walltime -- times a real out-of-core sort on the host

	// Verify ordering.
	res := out.Bytes()
	var prev uint32
	for i := 0; i < *keys; i++ {
		k := binary.LittleEndian.Uint32(res[i*4:])
		if k < prev {
			log.Fatalf("oocsort: output unsorted at key %d", i)
		}
		prev = k
	}
	fmt.Printf("sorted and verified in %v: %d runs, %.0f MB to store, %.0f MB back (%.1f Mkeys/s)\n",
		elapsed.Round(time.Millisecond), st.Runs,
		float64(st.BytesToStore)/1e6, float64(st.BytesFromStore)/1e6,
		float64(*keys)/1e6/elapsed.Seconds())
}
